//! Trace-driven SSD simulation of the four storage schemes.
//!
//! The simulator replays a block trace through: the write-back buffer, the
//! page-mapping FTL (with greedy GC), the scheme-specific read path and —
//! for FlexLevel — the AccessEval controller. Timing follows a single
//! busy-device queue (FlashSim's service model): a request waits for the
//! device to go idle, pays its own flash latency, and background work
//! (buffer eviction, GC, migrations) extends the device-busy horizon
//! behind it.
//!
//! Before measurement every trace-footprint page is *preloaded* (written
//! once, uncharged): steady-state devices are full, which is what makes
//! garbage collection — and the LevelAdjust-only scheme's over-
//! provisioning loss — visible, exactly as the paper describes ("frequent
//! garbage collection incurred by over-provisioning space loss").

use flash_model::{CellMode, Micros};
use flexlevel::{AccessEvalController, Migration};
use workloads::{IoOp, IoRequest, Trace};

use crate::buffer::WriteBuffer;
use crate::config::{Scheme, SsdConfig};
use crate::device::ReliabilityState;
use crate::ftl::{FtlError, OpCost, PageMapFtl};
use crate::stats::SimStats;

/// Simulation failures (propagated FTL space errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The FTL ran out of reclaimable space.
    Ftl(FtlError),
    /// The trace footprint exceeds the device's logical capacity.
    FootprintTooLarge {
        /// Pages the trace touches.
        footprint: u64,
        /// Pages the device exports.
        capacity: u64,
    },
}

impl From<FtlError> for SimError {
    fn from(e: FtlError) -> SimError {
        SimError::Ftl(e)
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Ftl(e) => write!(f, "ftl: {e}"),
            SimError::FootprintTooLarge {
                footprint,
                capacity,
            } => write!(
                f,
                "trace footprint {footprint} pages exceeds device capacity {capacity}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// The trace-driven SSD simulator.
#[derive(Debug)]
pub struct SsdSimulator {
    config: SsdConfig,
    ftl: PageMapFtl,
    buffer: WriteBuffer,
    reliability: ReliabilityState,
    access_eval: Option<AccessEvalController>,
    stats: SimStats,
    /// Per-channel device-busy horizons in µs.
    channel_free_at: Vec<f64>,
    /// Host-written pages (for write amplification).
    host_pages_written: u64,
    /// LevelAdjust-only: cap on simultaneously reduced blocks.
    max_reduced_blocks: u32,
}

impl SsdSimulator {
    /// Builds a simulator for `config`.
    pub fn new(config: SsdConfig) -> SsdSimulator {
        let ftl = PageMapFtl::new(config.geometry, config.gc_low_watermark)
            .with_gc_policy(config.gc_policy);
        let buffer = WriteBuffer::new(config.buffer_pages);
        let reliability = ReliabilityState::new(config.nunma, config.max_data_age, config.seed);
        let access_eval = match config.scheme {
            Scheme::FlexLevel => Some(AccessEvalController::new(config.access_eval)),
            _ => None,
        };
        let max_reduced_blocks = match config.scheme {
            Scheme::LevelAdjustOnly => {
                // Convert as many blocks as the minimum over-provisioning
                // allows: usable = total − reduced·(ppb/4) ≥ logical·(1+op),
                // keeping a few blocks of GC headroom above the watermark.
                let total = config.geometry.total_pages() as f64;
                let logical = config.geometry.logical_pages() as f64;
                let ppb = config.geometry.pages_per_block() as f64;
                let headroom = (config.gc_low_watermark.max(4) + 2) as f64 * ppb;
                let slack = total - logical * (1.0 + config.min_over_provisioning) - headroom;
                ((slack / (ppb / 4.0)).floor().max(0.0) as u32).min(config.geometry.blocks())
            }
            Scheme::FlexLevel => {
                // The pool bound, in blocks of reduced pages.
                let ppb = config.geometry.pages_per_block() as u64;
                (config.access_eval.pool_pages / (ppb * 3 / 4)) as u32
            }
            _ => 0,
        };
        let max_levels = config.schedule.max_extra_levels();
        let channel_free_at = vec![0.0; config.channels.max(1) as usize];
        SsdSimulator {
            config,
            ftl,
            buffer,
            reliability,
            access_eval,
            stats: SimStats::new(max_levels),
            channel_free_at,
            host_pages_written: 0,
            max_reduced_blocks,
        }
    }

    /// The configuration under simulation.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Host pages written so far (for write amplification).
    pub fn host_pages_written(&self) -> u64 {
        self.host_pages_written
    }

    /// The FTL (inspection).
    pub fn ftl(&self) -> &PageMapFtl {
        &self.ftl
    }

    /// Runs the full experiment: preload the footprint, reset counters,
    /// replay the trace, and return the final statistics.
    ///
    /// # Errors
    ///
    /// [`SimError::FootprintTooLarge`] if the trace does not fit;
    /// [`SimError::Ftl`] if the device runs out of reclaimable space.
    pub fn run(&mut self, trace: &Trace) -> Result<&SimStats, SimError> {
        self.preload(trace)?;
        for request in &trace.requests {
            self.serve(request)?;
        }
        Ok(&self.stats)
    }

    /// Writes every footprint page once (uncharged) so the device starts
    /// full, then zeroes the statistics.
    pub fn preload(&mut self, trace: &Trace) -> Result<(), SimError> {
        let capacity = self.ftl.logical_pages();
        if trace.footprint_pages > capacity {
            return Err(SimError::FootprintTooLarge {
                footprint: trace.footprint_pages,
                capacity,
            });
        }
        for lpn in 0..trace.footprint_pages {
            let mode = self.preload_mode();
            self.ftl.write(lpn, mode)?;
        }
        self.stats = SimStats::new(self.config.schedule.max_extra_levels());
        self.host_pages_written = 0;
        Ok(())
    }

    /// Initial placement mode: LevelAdjust-only converts blocks up front;
    /// every other scheme starts all-normal (FlexLevel promotes on demand).
    fn preload_mode(&self) -> CellMode {
        if self.config.scheme == Scheme::LevelAdjustOnly
            && self.ftl.reduced_blocks() < self.max_reduced_blocks
        {
            CellMode::Reduced
        } else {
            CellMode::Normal
        }
    }

    /// Serves one host request, updating timing and statistics. Requests
    /// queue on the channel their first page maps to.
    fn serve(&mut self, request: &IoRequest) -> Result<(), SimError> {
        let channel = (request.lpn % self.channel_free_at.len() as u64) as usize;
        let start = request.arrival_us.max(self.channel_free_at[channel]);
        let mut service = Micros::ZERO;
        let mut background = Micros::ZERO;
        for lpn in request.lpns() {
            let lpn = lpn % self.ftl.logical_pages();
            match request.op {
                IoOp::Read => {
                    let (fg, bg) = self.read_page(lpn)?;
                    service += fg;
                    background += bg;
                }
                IoOp::Write => {
                    let (fg, bg) = self.write_page(lpn)?;
                    service += fg;
                    background += bg;
                }
            }
        }
        let response = Micros(start - request.arrival_us) + service;
        match request.op {
            IoOp::Read => self.stats.host_reads += 1,
            IoOp::Write => self.stats.host_writes += 1,
        }
        self.stats
            .record_response(response, request.op == IoOp::Read);
        self.channel_free_at[channel] = start + service.as_f64() + background.as_f64();
        Ok(())
    }

    /// Host read of one page: returns (foreground, background) time.
    fn read_page(&mut self, lpn: u64) -> Result<(Micros, Micros), SimError> {
        if self.buffer.contains(lpn) {
            self.buffer.touch(lpn);
            self.stats.buffer_read_hits += 1;
            return Ok((self.config.latency.timing.page_transfer, Micros::ZERO));
        }
        self.stats.flash_reads += 1;
        let mode = self
            .ftl
            .placement(lpn)
            .map(|(_, mode)| mode)
            .unwrap_or(CellMode::Normal);
        let pe = self.effective_pe(lpn);
        let age = self.reliability.age(lpn);

        if mode == CellMode::Reduced {
            self.stats.reduced_reads += 1;
            // NUNMA 3 keeps reduced pages below the sensing trigger, but
            // weaker schemes (a NUNMA 1 deployment, or extreme stress) may
            // still need soft sensing — charge it honestly.
            let ber = self.reliability.reduced_ber(pe, age);
            let required = self.config.schedule.required_levels(ber);
            if let Some(ctrl) = self.access_eval.as_mut() {
                // Keep the pool's recency fresh; pooled reads need no
                // migrations.
                let _ = ctrl.on_read(lpn, required, self.config.schedule.max_extra_levels());
            }
            let latency = if required == 0 {
                self.config.latency.reduced_read_latency()
            } else {
                self.normal_read_latency(required, ber)
                    + self.config.latency.timing.reduce_code_cycle
            };
            return Ok((latency, Micros::ZERO));
        }

        let ber = self.reliability.normal_ber(pe, age);
        let required = self.config.schedule.required_levels(ber);
        let latency = self.normal_read_latency(required, ber);
        let slot = required.min(self.config.schedule.max_extra_levels()) as usize;
        self.stats.reads_by_sensing_level[slot] += 1;

        // AccessEval: evaluate the read and apply any migrations as
        // background work.
        let mut background = Micros::ZERO;
        let migrations = match self.access_eval.as_mut() {
            Some(ctrl) => ctrl.on_read(lpn, required, self.config.schedule.max_extra_levels()),
            None => Vec::new(),
        };
        for migration in migrations {
            background += self.apply_migration(migration)?;
        }
        if let Some(ctrl) = self.access_eval.as_ref() {
            let s = ctrl.stats();
            self.stats.promotions = s.promotions;
            self.stats.demotions = s.demotions;
        }
        Ok((latency, background))
    }

    /// Expected decoder iterations for a read sensed with `levels` extra
    /// levels at raw BER `ber`: the measured profile when one is
    /// configured, otherwise the `typical_iterations` heuristic.
    fn decode_iterations(&self, levels: u32, ber: f64) -> u32 {
        match &self.config.measured_iterations {
            Some(profile) => profile.iterations(levels),
            None => self.config.latency.typical_iterations(ber),
        }
    }

    /// Scheme-specific latency of a normal-page read needing `required`
    /// extra sensing levels at raw BER `ber`.
    fn normal_read_latency(&mut self, required: u32, ber: f64) -> Micros {
        match self.config.scheme {
            Scheme::Baseline => {
                // No optimisation: the controller provisions sensing for
                // the worst-case data it might hold at this wear level.
                let worst = self.reliability.worst_case_ber(self.config.base_pe_cycles);
                let levels = self.config.schedule.required_levels(worst);
                let iterations = self.decode_iterations(levels, ber);
                self.config.latency.read_latency(levels, iterations)
            }
            _ => {
                // Progressive sensing (LDPC-in-SSD and the normal-page
                // path of both LevelAdjust schemes): retry with one more
                // soft level until the frame decodes. Sensing and
                // transfer accumulate to the same total as a one-shot
                // read at `required` levels; each failed attempt also
                // pays a decode pass.
                let iterations = self.decode_iterations(required, ber);
                let latency = &self.config.latency;
                let one_shot = latency.read_latency(required, iterations);
                let wasted_decodes =
                    latency.decode_base + latency.decode_per_iteration * iterations as f64;
                one_shot + wasted_decodes * required as f64 * 0.5
            }
        }
    }

    /// Host write of one page via the write-back buffer.
    fn write_page(&mut self, lpn: u64) -> Result<(Micros, Micros), SimError> {
        self.host_pages_written += 1;
        self.reliability.record_write(lpn);
        let foreground = self.config.latency.timing.page_transfer;
        let mut background = Micros::ZERO;
        if let Some(evicted) = self.buffer.write(lpn) {
            background += self.flush_page(evicted)?;
        }
        Ok((foreground, background))
    }

    /// Programs a buffered page to flash (eviction or shutdown flush).
    fn flush_page(&mut self, lpn: u64) -> Result<Micros, SimError> {
        let mode = self.write_mode(lpn);
        let cost = self.ftl.write(lpn, mode)?;
        Ok(self.account(cost))
    }

    /// Which mode a (re)written page should land in.
    fn write_mode(&mut self, lpn: u64) -> CellMode {
        match self.config.scheme {
            Scheme::Baseline | Scheme::LdpcInSsd => CellMode::Normal,
            Scheme::LevelAdjustOnly => {
                // Stay in the block mode the data already occupies; fresh
                // data fills reduced blocks while the cap allows.
                match self.ftl.placement(lpn) {
                    Some((_, mode)) => mode,
                    None if self.ftl.reduced_blocks() < self.max_reduced_blocks => {
                        CellMode::Reduced
                    }
                    None => CellMode::Normal,
                }
            }
            Scheme::FlexLevel => {
                let pooled = self
                    .access_eval
                    .as_ref()
                    .map(|c| matches!(c.placement(lpn), flexlevel::Placement::Reduced))
                    .unwrap_or(false);
                if pooled {
                    CellMode::Reduced
                } else {
                    CellMode::Normal
                }
            }
        }
    }

    /// Applies one AccessEval migration; returns its background cost.
    fn apply_migration(&mut self, migration: Migration) -> Result<Micros, SimError> {
        let (lpn, mode) = match migration {
            Migration::PromoteToReduced { lpn } => (lpn, CellMode::Reduced),
            Migration::DemoteToNormal { lpn } => (lpn, CellMode::Normal),
        };
        // Read the current copy, then rewrite it in the target mode.
        self.stats.flash_reads += 1;
        let read_cost = self.config.latency.timing.read_transfer_latency(0);
        let cost = self.ftl.write(lpn, mode)?;
        Ok(read_cost + self.account(cost))
    }

    /// Converts FTL op counts into device time and folds them into the
    /// statistics.
    fn account(&mut self, cost: OpCost) -> Micros {
        let t = &self.config.latency.timing;
        self.stats.flash_reads += cost.flash_reads;
        self.stats.flash_programs += cost.programs;
        self.stats.erases += cost.erases;
        self.stats.gc_runs += cost.gc_runs;
        self.stats.gc_migrated_pages += cost.gc_moved;
        t.read_transfer_latency(0) * cost.flash_reads as f64
            + t.program * cost.programs as f64
            + t.erase * cost.erases as f64
    }

    /// Wear of the block holding `lpn` (base device wear plus simulated
    /// erases).
    fn effective_pe(&self, lpn: u64) -> u32 {
        let extra = self
            .ftl
            .placement(lpn)
            .map(|(phys, _)| self.ftl.block_erases(phys.block))
            .unwrap_or(0);
        self.config.base_pe_cycles + extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use workloads::WorkloadSpec;

    fn small_trace(requests: u64, footprint: u64) -> Trace {
        WorkloadSpec::fin2()
            .with_requests(requests)
            .with_footprint(footprint)
            .generate(&mut StdRng::seed_from_u64(9))
    }

    fn run_scheme(scheme: Scheme, trace: &Trace) -> SimStats {
        let config = SsdConfig::scaled(scheme, 64);
        let mut sim = SsdSimulator::new(config);
        sim.run(trace).expect("simulation completes").clone()
    }

    #[test]
    fn all_schemes_complete() {
        let trace = small_trace(3_000, 2_000);
        for scheme in Scheme::ALL {
            let stats = run_scheme(scheme, &trace);
            assert_eq!(stats.host_requests(), 3_000, "{}", scheme.label());
            assert!(stats.mean_response().as_f64() > 0.0);
        }
    }

    #[test]
    fn footprint_must_fit() {
        let config = SsdConfig::scaled(Scheme::Baseline, 16);
        let capacity = config.geometry.logical_pages();
        let trace = small_trace(10, capacity + 1);
        let mut sim = SsdSimulator::new(config);
        assert!(matches!(
            sim.run(&trace),
            Err(SimError::FootprintTooLarge { .. })
        ));
    }

    #[test]
    fn measured_iterations_profile_changes_read_latency() {
        // A profile pinning every depth at the minimum iteration count
        // must make reads cheaper than the BER heuristic (which charges
        // ≥ 2 iterations and grows with BER); the default (None) keeps
        // the heuristic byte-for-byte (covered by the golden test).
        use ldpc::IterationProfile;
        let trace = small_trace(3_000, 2_000);
        let heuristic = run_scheme(Scheme::LdpcInSsd, &trace).mean_response();
        let fast_profile = IterationProfile::new([1.0; IterationProfile::SLOTS]);
        let config =
            SsdConfig::scaled(Scheme::LdpcInSsd, 64).with_measured_iterations(fast_profile);
        let mut sim = SsdSimulator::new(config);
        let measured = sim
            .run(&trace)
            .expect("simulation completes")
            .mean_response();
        assert!(
            measured < heuristic,
            "single-iteration profile {measured} must beat heuristic {heuristic}"
        );
    }

    #[test]
    fn baseline_slowest_flexlevel_fastest() {
        // The Figure 6(a) ordering: baseline ≫ LDPC-in-SSD > FlexLevel,
        // with LevelAdjust-only above LDPC-in-SSD (GC thrash).
        let trace = small_trace(6_000, 2_500);
        let base = run_scheme(Scheme::Baseline, &trace).mean_response();
        let ldpc = run_scheme(Scheme::LdpcInSsd, &trace).mean_response();
        let flex = run_scheme(Scheme::FlexLevel, &trace).mean_response();
        assert!(
            base > ldpc,
            "baseline {base} must exceed LDPC-in-SSD {ldpc}"
        );
        assert!(
            ldpc > flex,
            "LDPC-in-SSD {ldpc} must exceed FlexLevel {flex}"
        );
    }

    #[test]
    fn flexlevel_promotes_hot_data() {
        let trace = small_trace(8_000, 1_000);
        let stats = run_scheme(Scheme::FlexLevel, &trace);
        assert!(stats.promotions > 0, "hot data must get promoted");
        assert!(stats.reduced_reads > 0, "pooled reads must be served");
    }

    #[test]
    fn flexlevel_writes_exceed_ldpc_in_ssd() {
        // Figure 7(a): migrations cost extra programs.
        let trace = small_trace(8_000, 1_000);
        let ldpc = run_scheme(Scheme::LdpcInSsd, &trace);
        let flex = run_scheme(Scheme::FlexLevel, &trace);
        assert!(
            flex.flash_programs >= ldpc.flash_programs,
            "FlexLevel programs {} must not be below LDPC-in-SSD {}",
            flex.flash_programs,
            ldpc.flash_programs
        );
    }

    #[test]
    fn level_adjust_only_garbage_collects_more() {
        // Figure 6(a)'s explanation: LevelAdjust-only loses
        // over-provisioning and thrashes GC under write pressure.
        let spec = WorkloadSpec::prj1() // write-heavy
            .with_requests(6_000)
            .with_footprint(2_500);
        let trace = spec.generate(&mut StdRng::seed_from_u64(5));
        let ldpc = run_scheme(Scheme::LdpcInSsd, &trace);
        let la_only = run_scheme(Scheme::LevelAdjustOnly, &trace);
        assert!(
            la_only.erases > ldpc.erases,
            "LevelAdjust-only erases {} must exceed LDPC-in-SSD {}",
            la_only.erases,
            ldpc.erases
        );
    }

    #[test]
    fn buffer_absorbs_rewrites() {
        let trace = small_trace(4_000, 500);
        let stats = run_scheme(Scheme::LdpcInSsd, &trace);
        assert!(
            stats.buffer_read_hits > 0,
            "hot reads should hit the buffer"
        );
    }

    #[test]
    fn lower_wear_needs_less_sensing() {
        // Figure 6(b) mechanism: at lower P/E the schedule demands fewer
        // levels, shrinking the baseline/FlexLevel gap.
        let trace = small_trace(4_000, 2_000);
        let young = {
            let config = SsdConfig::scaled(Scheme::LdpcInSsd, 64).with_base_pe(3000);
            let mut sim = SsdSimulator::new(config);
            sim.run(&trace).unwrap().clone()
        };
        let old = {
            let config = SsdConfig::scaled(Scheme::LdpcInSsd, 64).with_base_pe(6000);
            let mut sim = SsdSimulator::new(config);
            sim.run(&trace).unwrap().clone()
        };
        assert!(old.soft_read_fraction() > young.soft_read_fraction());
        assert!(old.mean_read_response() > young.mean_read_response());
    }

    #[test]
    fn deterministic_given_seed() {
        let trace = small_trace(2_000, 1_000);
        let a = run_scheme(Scheme::FlexLevel, &trace);
        let b = run_scheme(Scheme::FlexLevel, &trace);
        assert_eq!(a, b);
    }

    #[test]
    fn nunma3_pool_beats_nunma1_pool() {
        // The NUNMA ablation in miniature: weaker reduced-state voltages
        // leave pooled pages needing soft sensing at high stress, so a
        // NUNMA1 FlexLevel deployment must not beat NUNMA3.
        let trace = small_trace(6_000, 1_500);
        let run = |nunma| {
            let mut config = SsdConfig::scaled(Scheme::FlexLevel, 64);
            config.nunma = nunma;
            let mut sim = SsdSimulator::new(config);
            sim.run(&trace).unwrap().mean_response().as_f64()
        };
        let n1 = run(flexlevel::NunmaScheme::Nunma1);
        let n3 = run(flexlevel::NunmaScheme::Nunma3);
        assert!(n3 <= n1, "NUNMA3 {n3} must not lose to NUNMA1 {n1}");
    }

    #[test]
    fn wear_aware_policy_runs_and_matches_host_counters() {
        let trace = small_trace(3_000, 1_200);
        let mut config = SsdConfig::scaled(Scheme::LdpcInSsd, 64);
        config.gc_policy = crate::ftl::GcPolicy::WearAware;
        let mut sim = SsdSimulator::new(config);
        let stats = sim.run(&trace).unwrap().clone();
        assert_eq!(stats.host_requests(), 3_000);
        let (lo, hi) = sim.ftl().erase_spread();
        assert!(lo <= hi);
    }

    #[test]
    fn more_channels_reduce_queueing() {
        let trace = small_trace(6_000, 2_000);
        let run = |channels: u32| {
            let config = SsdConfig::scaled(Scheme::Baseline, 64).with_channels(channels);
            let mut sim = SsdSimulator::new(config);
            sim.run(&trace).unwrap().mean_response().as_f64()
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four < one,
            "4 channels ({four}) must beat 1 channel ({one}) under load"
        );
    }

    #[test]
    fn stats_are_internally_consistent() {
        let trace = small_trace(5_000, 1_500);
        let stats = run_scheme(Scheme::FlexLevel, &trace);
        // Sensing histogram covers exactly the normal-page host reads.
        let histogram: u64 = stats.reads_by_sensing_level.iter().sum();
        assert!(
            histogram + stats.reduced_reads + stats.buffer_read_hits >= stats.host_reads,
            "every host read is a buffer hit, a reduced read, or a sensed read"
        );
        // GC relocations are included in flash programs.
        assert!(stats.flash_programs >= stats.gc_migrated_pages);
        // Erases equal GC runs in this FTL (one victim per run).
        assert_eq!(stats.erases, stats.gc_runs);
    }
}
