//! Trace-driven SSD simulation of the four storage schemes.
//!
//! The simulator replays a block trace through: the write-back buffer, the
//! page-mapping FTL (with greedy GC), the scheme-specific read path and —
//! for FlexLevel — the AccessEval controller. That *logical* layer is
//! shared by two timing models ([`TimingModel`]):
//!
//! * **SingleQueue** (default) — FlashSim's service model: a request
//!   waits for its channel to go idle, pays its lumped flash latency, and
//!   background work (buffer eviction, GC, migrations) extends the
//!   device-busy horizon behind it.
//! * **Pipelined** — a deterministic discrete-event schedule: every
//!   operation becomes a chain of sense/transfer/decode/program/erase
//!   stages (see [`crate::pipeline`]) scheduled on per-plane,
//!   per-channel and per-decoder-slot resources, so stages of different
//!   requests overlap. Background work runs as its own op chains instead
//!   of a scalar horizon extension.
//!
//! Logical decisions depend only on request *order*, never on timing, so
//! both models produce bit-identical operation counters; only response
//! times, utilization and throughput differ.
//!
//! Before measurement every trace-footprint page is *preloaded* (written
//! once, uncharged): steady-state devices are full, which is what makes
//! garbage collection — and the LevelAdjust-only scheme's over-
//! provisioning loss — visible, exactly as the paper describes ("frequent
//! garbage collection incurred by over-provisioning space loss").
//!
//! # Serving architecture
//!
//! The replay loop is split into three layers:
//!
//! * **Request source** ([`workloads::RequestSource`]) — where requests
//!   come from: [`workloads::TraceSource`] replays a closed trace;
//!   [`workloads::OpenLoopSource`] generates multi-tenant open-loop
//!   arrivals. [`SsdSimulator::run`] is now a thin wrapper over
//!   [`SsdSimulator::serve`] with a `TraceSource` and replay options.
//! * **Scheduler** — per-tenant admission control (the backpressure
//!   machinery in `crate::serve`) in front of the two timing
//!   backends. Admission always uses the lumped single-queue completion
//!   model, so admitted/dropped/deferred sets — and every logical
//!   counter — are bit-identical across backends.
//! * **Accounting** — run-wide [`SimStats`] plus per-tenant
//!   [`TenantStats`] (arrivals, drops, defers, latency SLO tracking),
//!   mirrored into `flexlevel-obs` with tenant labels.

use flash_model::{BlockId, CellMode, Micros};
use flexlevel::{AccessEvalController, Migration};
use workloads::{IoOp, IoRequest, RequestSource, TenantRequest, Trace, TraceSource};

use crate::buffer::WriteBuffer;
use crate::config::{Scheme, SsdConfig, TimingModel};
use crate::device::{ReliabilityState, ResourcePool};
use crate::events::EventQueue;
use crate::faults::{CrashPlan, CrashTrigger, FaultState};
use crate::ftl::{FtlError, JournalRecord, OpCost, PageMapFtl, RecoveryReport, TornPage};
use crate::obs::SimObserver;
use crate::pipeline::{expand_ops, FlashOp, Stage};
use crate::recovery;
use crate::recovery::{config_fingerprint, DeviceImage, ImageError};
use crate::scenario::EnvironmentState;
use crate::serve::{Admit, Backpressure, ServeError, ServeOptions};
use crate::stats::{SimStats, TenantStats};

/// Simulation failures (propagated FTL space errors).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The FTL ran out of reclaimable space.
    Ftl(FtlError),
    /// The trace footprint exceeds the device's logical capacity.
    FootprintTooLarge {
        /// Pages the trace touches.
        footprint: u64,
        /// Pages the device exports.
        capacity: u64,
    },
    /// A [`CrashPlan`] cut power; the run is incomplete by design. The
    /// exact journal cut is available via
    /// [`SsdSimulator::crash_cut`].
    PowerLoss {
        /// Zero-based index of the request being served when power died.
        at_request: u64,
    },
}

impl From<FtlError> for SimError {
    fn from(e: FtlError) -> SimError {
        SimError::Ftl(e)
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Ftl(e) => write!(f, "ftl: {e}"),
            SimError::FootprintTooLarge {
                footprint,
                capacity,
            } => write!(
                f,
                "trace footprint {footprint} pages exceeds device capacity {capacity}"
            ),
            SimError::PowerLoss { at_request } => {
                write!(f, "sudden power-off while serving request {at_request}")
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Ftl(e) => Some(e),
            SimError::FootprintTooLarge { .. } | SimError::PowerLoss { .. } => None,
        }
    }
}

/// Where exactly a [`CrashPlan`] cut the mapping journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashCut {
    /// Journal records that survived the crash (the cut prefix length).
    pub record: usize,
    /// Whether the interrupted record additionally left a torn page.
    pub torn: bool,
    /// Zero-based index of the request being served when power died.
    pub at_request: u64,
}

/// What the logical layer decided one page access costs: lumped
/// foreground/background time for the single-queue model, plus the
/// staged op chains for the pipelined model (left empty when the
/// single-queue model runs, so the hot path allocates nothing).
#[derive(Debug, Default)]
struct PageCharge {
    fg: Micros,
    bg: Micros,
    fg_ops: Vec<FlashOp>,
    bg_ops: Vec<FlashOp>,
}

/// A whole host request's logical outcome.
#[derive(Debug)]
struct RequestPlan {
    fg: Micros,
    bg: Micros,
    is_read: bool,
    fg_ops: Vec<FlashOp>,
    bg_ops: Vec<FlashOp>,
}

/// Scheme-resolved cost of one flash read: the lumped foreground charge,
/// the sensing levels actually charged, and the decoder-stage duration
/// (including wasted progressive-sensing decode passes).
#[derive(Debug, Clone, Copy)]
struct ReadPlan {
    fg: Micros,
    levels: u32,
    decode: Micros,
    iterations: u32,
}

/// The trace-driven SSD simulator.
#[derive(Debug)]
pub struct SsdSimulator {
    config: SsdConfig,
    ftl: PageMapFtl,
    buffer: WriteBuffer,
    reliability: ReliabilityState,
    access_eval: Option<AccessEvalController>,
    stats: SimStats,
    /// Per-channel device-busy horizons (single-queue model).
    channel_free_at: Vec<Micros>,
    /// Host-written pages (for write amplification).
    host_pages_written: u64,
    /// LevelAdjust-only: cap on simultaneously reduced blocks.
    max_reduced_blocks: u32,
    /// Fault injector; `None` whenever `config.faults.enabled` is off, so
    /// the golden path never draws, prices or counts anything new.
    faults: Option<FaultState>,
    /// Scenario environment (clusters, thermal gradient, read disturb);
    /// `None` whenever `config.environment` is empty, so the golden path
    /// sees no adjustment and no per-page state.
    environment: Option<EnvironmentState>,
    /// Host requests since the last patrol-scrub visit.
    scrub_countdown: u64,
    /// Round-robin block cursor of the patrol scrubber.
    scrub_cursor: u32,
    /// Observability recorder; `None` (the default) disables every
    /// tracing/metrics code path — the `Option` check is the whole cost.
    obs: Option<Box<SimObserver>>,
    /// Zero-based index of the next request to pull from the source
    /// (advances during replay; restored by checkpoint/restore).
    request_cursor: u64,
    /// Stop bound for [`run_prefix`](Self::run_prefix): serving halts
    /// before the request at this cursor.
    stop_after: Option<u64>,
    /// Armed sudden-power-off plan; `None` (the default) never crashes.
    crash_plan: Option<CrashPlan>,
    /// Where the armed plan actually cut, once it fired.
    crash_cut: Option<CrashCut>,
    /// Time-series sampler state carried by a restored device image,
    /// handed to the next observer attached so a resumed campaign's
    /// series continues where the checkpointed run left off.
    restored_series: Option<obs::SeriesState>,
}

impl SsdSimulator {
    /// Builds a simulator for `config`.
    pub fn new(config: SsdConfig) -> SsdSimulator {
        let ftl = PageMapFtl::new(config.geometry, config.gc_low_watermark)
            .with_gc_policy(config.gc_policy);
        let buffer = WriteBuffer::new(config.buffer_pages);
        let reliability = ReliabilityState::with_cell(
            config.cell,
            config.nunma,
            config.max_data_age,
            config.seed,
        );
        let access_eval = match config.scheme {
            Scheme::FlexLevel => Some(AccessEvalController::new(config.access_eval)),
            _ => None,
        };
        let max_reduced_blocks = match config.scheme {
            Scheme::LevelAdjustOnly => {
                // Convert as many blocks as the minimum over-provisioning
                // allows: usable = total − reduced·(ppb/4) ≥ logical·(1+op),
                // keeping a few blocks of GC headroom above the watermark.
                let total = config.geometry.total_pages() as f64;
                let logical = config.geometry.logical_pages() as f64;
                let ppb = config.geometry.pages_per_block() as f64;
                let headroom = (config.gc_low_watermark.max(4) + 2) as f64 * ppb;
                let slack = total - logical * (1.0 + config.min_over_provisioning) - headroom;
                ((slack / (ppb / 4.0)).floor().max(0.0) as u32).min(config.geometry.blocks())
            }
            Scheme::FlexLevel => {
                // The pool bound, in blocks of reduced pages.
                let ppb = config.geometry.pages_per_block() as u64;
                (config.access_eval.pool_pages / (ppb * 3 / 4)) as u32
            }
            _ => 0,
        };
        let max_levels = config.schedule.max_extra_levels();
        let channel_free_at = vec![Micros::ZERO; config.channels.max(1) as usize];
        let faults = config.faults.enabled.then(|| {
            // The Vref-shift rung's gain comes from the device's actual
            // retry table at its starting wear (wires
            // `reliability::read_retry` into the recovery ladder).
            let gain = reliability.retry_gain(config.base_pe_cycles);
            FaultState::new(config.faults.clone(), &config.schedule, gain)
        });
        let environment = EnvironmentState::new(&config);
        SsdSimulator {
            config,
            ftl,
            buffer,
            reliability,
            access_eval,
            stats: SimStats::new(max_levels),
            channel_free_at,
            host_pages_written: 0,
            max_reduced_blocks,
            faults,
            environment,
            scrub_countdown: 0,
            scrub_cursor: 0,
            obs: None,
            request_cursor: 0,
            stop_after: None,
            crash_plan: None,
            crash_cut: None,
            restored_series: None,
        }
    }

    /// Attaches an observability recorder; subsequent runs record
    /// metrics, histograms and read spans into it. On a simulator built
    /// by [`restore`](Self::restore) from an image that carried
    /// time-series state, an observer with the series enabled resumes
    /// that series mid-window.
    pub fn attach_observer(&mut self, mut observer: SimObserver) {
        if let Some(state) = self.restored_series.take() {
            observer.restore_series(&state);
        }
        self.obs = Some(Box::new(observer));
    }

    /// Builder form of [`attach_observer`](Self::attach_observer).
    #[must_use]
    pub fn with_observer(mut self, observer: SimObserver) -> SsdSimulator {
        self.attach_observer(observer);
        self
    }

    /// The attached observer, if any.
    pub fn observer(&self) -> Option<&SimObserver> {
        self.obs.as_deref()
    }

    /// Detaches and returns the observer (typically after `run`, to
    /// export its recorder).
    pub fn take_observer(&mut self) -> Option<SimObserver> {
        self.obs.take().map(|b| *b)
    }

    /// The configuration under simulation.
    pub fn config(&self) -> &SsdConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Host pages written so far (for write amplification).
    pub fn host_pages_written(&self) -> u64 {
        self.host_pages_written
    }

    /// The FTL (inspection).
    pub fn ftl(&self) -> &PageMapFtl {
        &self.ftl
    }

    /// Runs the full experiment: preload the footprint, reset counters,
    /// replay the trace, and return the final statistics.
    ///
    /// Equivalent to [`serve`](Self::serve) with a
    /// [`TraceSource`] and [`ServeOptions::replay`] — no tenants, no
    /// admission control, bit-identical to the pre-serving simulator.
    ///
    /// # Errors
    ///
    /// [`SimError::FootprintTooLarge`] if the trace does not fit;
    /// [`SimError::Ftl`] if the device runs out of reclaimable space.
    pub fn run(&mut self, trace: &Trace) -> Result<&SimStats, SimError> {
        let mut source = TraceSource::new(trace);
        self.run_source(&mut source, &ServeOptions::replay())?;
        Ok(&self.stats)
    }

    /// Drains `source` through the scheduler under `options`: preload the
    /// footprint, reset counters, pull requests in arrival order through
    /// per-tenant admission control, and return the final statistics
    /// (including [`SimStats::tenants`] when `options` is tenanted).
    ///
    /// # Errors
    ///
    /// [`ServeError::QosMismatch`] if `options` defines fewer QoS entries
    /// than `source` has tenants; [`ServeError::Sim`] on simulation
    /// failure.
    pub fn serve<S: RequestSource>(
        &mut self,
        source: &mut S,
        options: &ServeOptions,
    ) -> Result<&SimStats, ServeError> {
        if options.tenanted() && (options.tenants.len() as u32) < source.tenants() {
            return Err(ServeError::QosMismatch {
                tenants: source.tenants(),
                qos: options.tenants.len(),
            });
        }
        self.run_source(source, options)?;
        Ok(&self.stats)
    }

    /// The shared serving loop behind [`run`](Self::run) and
    /// [`serve`](Self::serve).
    fn run_source<S: RequestSource>(
        &mut self,
        source: &mut S,
        options: &ServeOptions,
    ) -> Result<(), SimError> {
        self.preload_pages(source.footprint_pages())?;
        if options.tenanted() {
            self.stats.tenants = options
                .tenants
                .iter()
                .map(|qos| TenantStats::new(qos.slo_us))
                .collect();
            if let Some(o) = self.obs.as_mut() {
                o.ensure_tenants(options);
            }
        }
        match self.config.timing_model {
            TimingModel::SingleQueue => self.run_source_single(source, options)?,
            TimingModel::Pipelined => self.run_source_pipelined(source, options)?,
        }
        if let Some(o) = self.obs.as_mut() {
            o.flush_deferred();
            o.finish_run(&self.stats, self.host_pages_written);
        }
        Ok(())
    }

    /// Writes every footprint page once (uncharged) so the device starts
    /// full, then zeroes the statistics.
    pub fn preload(&mut self, trace: &Trace) -> Result<(), SimError> {
        self.preload_pages(trace.footprint_pages)
    }

    /// [`preload`](Self::preload) against a bare footprint (what request
    /// sources report).
    fn preload_pages(&mut self, footprint_pages: u64) -> Result<(), SimError> {
        let capacity = self.ftl.logical_pages();
        if footprint_pages > capacity {
            return Err(SimError::FootprintTooLarge {
                footprint: footprint_pages,
                capacity,
            });
        }
        for lpn in 0..footprint_pages {
            let mode = self.preload_mode();
            self.ftl.write(lpn, mode)?;
        }
        self.stats = SimStats::new(self.config.schedule.max_extra_levels());
        self.host_pages_written = 0;
        if let Some(faults) = self.faults.as_mut() {
            faults.reset();
        }
        if let Some(env) = self.environment.as_mut() {
            env.reset();
        }
        self.scrub_countdown = 0;
        self.scrub_cursor = 0;
        self.request_cursor = 0;
        self.crash_cut = None;
        if let Some(o) = self.obs.as_mut() {
            o.reset();
        }
        Ok(())
    }

    /// Initial placement mode: LevelAdjust-only converts blocks up front;
    /// every other scheme starts all-normal (FlexLevel promotes on demand).
    fn preload_mode(&self) -> CellMode {
        if self.config.scheme == Scheme::LevelAdjustOnly
            && self.ftl.reduced_blocks() < self.max_reduced_blocks
        {
            CellMode::Reduced
        } else {
            CellMode::Normal
        }
    }

    /// `true` when the pipelined model runs (op chains must be built).
    fn pipelined(&self) -> bool {
        self.config.timing_model == TimingModel::Pipelined
    }

    /// Arms (or clears) a sudden-power-off plan. While armed, serving
    /// stops with [`SimError::PowerLoss`] when the trigger fires and
    /// [`crash_cut`](Self::crash_cut) reports where the mapping journal
    /// was cut.
    pub fn set_crash_plan(&mut self, plan: Option<CrashPlan>) {
        self.crash_plan = plan;
    }

    /// Where the armed crash plan cut the journal, once it fired.
    pub fn crash_cut(&self) -> Option<CrashCut> {
        self.crash_cut
    }

    /// Zero-based index of the next request to pull from the source.
    pub fn request_cursor(&self) -> u64 {
        self.request_cursor
    }

    /// Evaluates the armed crash plan against the request just served;
    /// on fire, derives the seeded journal cut and returns the error the
    /// serving loop must propagate.
    fn check_crash(&mut self, at: u64, arrival_us: f64, records_before: usize) -> Option<SimError> {
        let plan = self.crash_plan?;
        let fired = match plan.trigger {
            CrashTrigger::OpIndex(index) => at == index,
            CrashTrigger::SimTimeUs(t) => arrival_us >= t,
        };
        if !fired {
            return None;
        }
        let records_after = self.ftl.journal().map_or(0, <[_]>::len);
        let (record, torn) = plan.cut(at, records_before, records_after);
        self.crash_cut = Some(CrashCut {
            record,
            torn,
            at_request: at,
        });
        Some(SimError::PowerLoss { at_request: at })
    }

    /// Captures the complete device state as a restorable
    /// [`DeviceImage`] and switches the FTL's mapping journal on, so
    /// every subsequent mapping change is appended relative to this
    /// checkpoint. `trace_fingerprint` is left `0`; callers tying the
    /// image to a trace stamp it via [`recovery::trace_fingerprint`].
    ///
    /// # Errors
    ///
    /// [`ImageError::Invariant`] if the run is tenanted — per-tenant
    /// scheduler state is not checkpointable.
    pub fn checkpoint(&mut self) -> Result<DeviceImage, ImageError> {
        if !self.stats.tenants.is_empty() {
            return Err(ImageError::Invariant(
                "tenanted serve runs cannot be checkpointed".to_string(),
            ));
        }
        self.ftl.enable_journal();
        let (buffer, buffer_next_seq) = self.buffer.snapshot();
        let (ages, age_rng) = self.reliability.snapshot();
        Ok(DeviceImage {
            config_fingerprint: config_fingerprint(&self.config),
            trace_fingerprint: 0,
            request_cursor: self.request_cursor,
            ftl: self.ftl.snapshot(),
            buffer,
            buffer_next_seq,
            ages,
            age_rng,
            access_eval: self
                .access_eval
                .as_ref()
                .map(AccessEvalController::snapshot),
            fault_counters: self.faults.as_ref().map(FaultState::counters_snapshot),
            disturb: self
                .environment
                .as_ref()
                .map(EnvironmentState::disturb_snapshot),
            stats: self.stats.clone(),
            host_pages_written: self.host_pages_written,
            scrub_countdown: self.scrub_countdown,
            scrub_cursor: self.scrub_cursor,
            channel_free_at: self.channel_free_at.iter().map(|t| t.as_f64()).collect(),
            journal: Vec::new(),
            torn: None,
            crashed_at: None,
            series: self.obs.as_ref().and_then(|o| o.series_state()),
        })
    }

    /// Derives the post-crash device image: `base` (the last clean
    /// checkpoint) plus the journal prefix that reached the flash before
    /// power died, plus the torn page the interrupted program left, if
    /// any. The recovered state is then proven by
    /// [`PageMapFtl::recover`] against this image.
    ///
    /// # Errors
    ///
    /// [`ImageError::Invariant`] if no crash has fired or the journal is
    /// not enabled.
    pub fn crash_image(&self, base: &DeviceImage) -> Result<DeviceImage, ImageError> {
        let cut = self
            .crash_cut
            .ok_or_else(|| ImageError::Invariant("no crash has fired".to_string()))?;
        let journal = self
            .ftl
            .journal()
            .ok_or_else(|| ImageError::Invariant("mapping journal not enabled".to_string()))?;
        if cut.record > journal.len() {
            return Err(ImageError::Invariant(format!(
                "crash cut {} beyond journal length {}",
                cut.record,
                journal.len()
            )));
        }
        // The torn page is the *first lost* record — a program that was
        // in flight when power died. Only `Write` records leave one;
        // metadata-only records (erase, retire, commit) tear nothing.
        let torn = if cut.torn {
            match journal.get(cut.record) {
                Some(&JournalRecord::Write { block, page, .. }) => Some(TornPage { block, page }),
                _ => None,
            }
        } else {
            None
        };
        let mut image = base.clone();
        image.journal = journal[..cut.record].to_vec();
        image.torn = torn;
        image.crashed_at = Some(cut.at_request);
        Ok(image)
    }

    /// Rebuilds a simulator from a checkpoint image, ready to
    /// [`resume`](Self::resume) at `image.request_cursor`. The caller
    /// supplies the same configuration the checkpoint was taken under
    /// (verified by fingerprint). Crash images are restored from their
    /// *checkpoint-time* FTL: resumed serving re-executes the journaled
    /// suffix deterministically, which is what makes split runs
    /// bit-identical to uninterrupted ones.
    ///
    /// # Errors
    ///
    /// [`ImageError::ConfigMismatch`] on a fingerprint mismatch;
    /// [`ImageError::Corrupt`] if any component snapshot fails
    /// validation against the rebuilt simulator.
    pub fn restore(config: SsdConfig, image: &DeviceImage) -> Result<SsdSimulator, ImageError> {
        let expected = config_fingerprint(&config);
        if image.config_fingerprint != expected {
            return Err(ImageError::ConfigMismatch {
                expected,
                found: image.config_fingerprint,
            });
        }
        let mut sim = SsdSimulator::new(config);
        sim.ftl = PageMapFtl::from_image(&image.ftl)?;
        sim.buffer = WriteBuffer::from_snapshot(
            sim.config.buffer_pages,
            &image.buffer,
            image.buffer_next_seq,
        )
        .map_err(ImageError::Corrupt)?;
        sim.reliability.restore(&image.ages, image.age_rng);
        match (sim.access_eval.as_mut(), image.access_eval.as_ref()) {
            (Some(controller), Some(snapshot)) => {
                controller.restore(snapshot).map_err(ImageError::Corrupt)?;
            }
            (None, None) => {}
            _ => return Err(ImageError::Corrupt("AccessEval presence mismatch")),
        }
        match (sim.faults.as_mut(), image.fault_counters.as_ref()) {
            (Some(faults), Some(counters)) => faults.restore_counters(counters),
            (None, None) => {}
            _ => return Err(ImageError::Corrupt("fault-state presence mismatch")),
        }
        match (sim.environment.as_mut(), image.disturb.as_ref()) {
            (Some(env), Some(disturb)) => env.restore_disturb(disturb),
            (None, None) => {}
            _ => return Err(ImageError::Corrupt("environment presence mismatch")),
        }
        if image.channel_free_at.len() != sim.channel_free_at.len() {
            return Err(ImageError::Corrupt("channel count mismatch"));
        }
        sim.stats = image.stats.clone();
        sim.host_pages_written = image.host_pages_written;
        sim.scrub_countdown = image.scrub_countdown;
        sim.scrub_cursor = image.scrub_cursor;
        sim.channel_free_at = image.channel_free_at.iter().map(|&us| Micros(us)).collect();
        sim.request_cursor = image.request_cursor;
        sim.restored_series = image.series.clone();
        Ok(sim)
    }

    /// Runs the first `stop` requests of `trace` — preload and counter
    /// reset included — then returns with the simulator *mid-run*, ready
    /// for [`checkpoint`](Self::checkpoint). Observability export is
    /// deliberately not finished: the run is not over.
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run).
    pub fn run_prefix(&mut self, trace: &Trace, stop: u64) -> Result<&SimStats, SimError> {
        self.preload_pages(trace.footprint_pages)?;
        self.stop_after = Some(stop);
        let mut source = TraceSource::new(trace);
        let options = ServeOptions::replay();
        let outcome = match self.config.timing_model {
            TimingModel::SingleQueue => self.run_source_single(&mut source, &options),
            TimingModel::Pipelined => self.run_source_pipelined(&mut source, &options),
        };
        self.stop_after = None;
        outcome?;
        Ok(&self.stats)
    }

    /// Continues serving `trace` from the current request cursor to the
    /// end — the second half of a checkpointed run, after
    /// [`restore`](Self::restore) or [`run_prefix`](Self::run_prefix).
    /// No preload, no counter reset; finishes observability export.
    ///
    /// # Errors
    ///
    /// As [`run`](Self::run); [`SimError::PowerLoss`] if an armed crash
    /// plan fires during the resumed portion.
    pub fn resume(&mut self, trace: &Trace) -> Result<&SimStats, SimError> {
        let mut source = TraceSource::starting_at(trace, self.request_cursor as usize);
        let options = ServeOptions::replay();
        match self.config.timing_model {
            TimingModel::SingleQueue => self.run_source_single(&mut source, &options)?,
            TimingModel::Pipelined => self.run_source_pipelined(&mut source, &options)?,
        }
        if let Some(o) = self.obs.as_mut() {
            o.flush_deferred();
            o.finish_run(&self.stats, self.host_pages_written);
        }
        Ok(&self.stats)
    }

    /// Folds a recovery proof's outcome into the statistics (surfaced in
    /// the recovery panel and the observability export) before resuming.
    pub fn note_recovery(&mut self, report: &RecoveryReport, checkpoint_age_requests: u64) {
        self.stats.journal_replayed += report.journal_replayed;
        self.stats.torn_pages_discarded += report.torn_pages_discarded;
        self.stats.checkpoint_age_requests = checkpoint_age_requests;
    }

    /// Drains `source` under the single-queue model: an admitted request
    /// queues on the channel its first page maps to (no earlier than its
    /// submission time), pays its lumped latency, and background work
    /// extends the horizon behind it. With replay options the admission
    /// layer is a no-op and the arithmetic reduces exactly to the
    /// pre-serving replay loop.
    fn run_source_single<S: RequestSource>(
        &mut self,
        source: &mut S,
        options: &ServeOptions,
    ) -> Result<(), SimError> {
        let tenanted = options.tenanted();
        let mut backpressure = Backpressure::new(options);
        loop {
            if self
                .stop_after
                .is_some_and(|stop| self.request_cursor >= stop)
            {
                break;
            }
            let Some(TenantRequest { tenant, request }) = source.next_request() else {
                break;
            };
            if let Some(o) = self.obs.as_mut() {
                o.on_arrival(request.arrival_us, &self.stats, &backpressure);
            }
            let at = self.request_cursor;
            self.request_cursor += 1;
            if tenanted {
                self.stats.tenants[tenant as usize].arrivals += 1;
            }
            let submit_us = match backpressure.admit(tenant, request.arrival_us) {
                Admit::Now => request.arrival_us,
                Admit::DeferredUntil(at) => {
                    self.stats.tenants[tenant as usize].deferred += 1;
                    at
                }
                Admit::Drop => {
                    self.stats.tenants[tenant as usize].dropped += 1;
                    continue;
                }
            };
            if tenanted {
                if let Some(o) = self.obs.as_mut() {
                    o.set_tenant(tenant);
                }
            }
            let records_before = self.ftl.journal().map_or(0, <[_]>::len);
            let plan = self.serve_logical(&request)?;
            let channel = (request.lpn % self.channel_free_at.len() as u64) as usize;
            let arrival = Micros(request.arrival_us);
            let start = Micros(submit_us).max(self.channel_free_at[channel]);
            let response = (start - arrival) + plan.fg;
            self.stats.record_response(response, plan.is_read);
            if let Some(o) = self.obs.as_mut() {
                o.end_request_single(arrival, start, response);
            }
            self.channel_free_at[channel] = start + plan.fg + plan.bg;
            backpressure.commit(tenant, (start + plan.fg).as_f64());
            if tenanted {
                if let Some(o) = self.obs.as_mut() {
                    o.tenant_lumped(tenant, ((start - arrival) + plan.fg).as_f64());
                }
                let t = &mut self.stats.tenants[tenant as usize];
                t.served += 1;
                if plan.is_read {
                    t.reads += 1;
                } else {
                    t.writes += 1;
                }
                t.record_response(response);
                if let Some(o) = self.obs.as_mut() {
                    o.tenant_response(tenant, response);
                }
            }
            self.ftl.record_commit(at);
            if let Some(err) = self.check_crash(at, request.arrival_us, records_before) {
                return Err(err);
            }
        }
        // Flush the final partial series window only when the whole
        // source drained: a prefix run's open window rides the device
        // image so a resumed campaign's series matches an uninterrupted
        // run's byte for byte.
        if self.stop_after.is_none() {
            if let Some(o) = self.obs.as_mut() {
                o.series_flush(&self.stats, &backpressure);
            }
        }
        self.stats.makespan_us = self
            .channel_free_at
            .iter()
            .fold(0.0_f64, |acc, t| acc.max(t.as_f64()));
        Ok(())
    }

    /// Runs one request through the logical layer (buffer, FTL, wear,
    /// AccessEval), updating every operation counter and returning the
    /// request's cost plan. Timing-model independent: decisions depend
    /// only on the order requests are presented, which both models keep
    /// equal to trace order.
    fn serve_logical(&mut self, request: &IoRequest) -> Result<RequestPlan, SimError> {
        let mut plan = RequestPlan {
            fg: Micros::ZERO,
            bg: Micros::ZERO,
            is_read: request.op == IoOp::Read,
            fg_ops: Vec::new(),
            bg_ops: Vec::new(),
        };
        if let Some(o) = self.obs.as_mut() {
            o.begin_request(request.lpn, plan.is_read, request.arrival_us);
        }
        for lpn in request.lpns() {
            let lpn = lpn % self.ftl.logical_pages();
            let page = match request.op {
                IoOp::Read => self.read_page(lpn)?,
                IoOp::Write => self.write_page(lpn)?,
            };
            plan.fg += page.fg;
            plan.bg += page.bg;
            plan.fg_ops.extend(page.fg_ops);
            plan.bg_ops.extend(page.bg_ops);
        }
        match request.op {
            IoOp::Read => self.stats.host_reads += 1,
            IoOp::Write => self.stats.host_writes += 1,
        }
        // Patrol scrub: every `scrub_interval` host requests the chain
        // visits the next cold block as background work.
        if self.faults.is_some() && self.config.faults.scrub_interval > 0 {
            self.scrub_countdown += 1;
            if self.scrub_countdown >= self.config.faults.scrub_interval {
                self.scrub_countdown = 0;
                plan.bg += self.patrol_scrub(&mut plan.bg_ops)?;
            }
        }
        Ok(plan)
    }

    /// Drains `source` under the pipelined discrete-event model.
    ///
    /// Phase 1 runs the logical layer over all requests in arrival order
    /// — producing exactly the counters the single-queue model produces —
    /// and collects each request's foreground and background stage
    /// chains. Admission decisions replay the *lumped* single-queue law
    /// on a virtual clock, so the admitted/dropped/deferred sets match
    /// the single-queue backend bit-for-bit. Phase 2 schedules the
    /// admitted chains on the resource pool: a chain's next stage is
    /// reserved the instant its previous stage completes (FCFS in
    /// deterministic event order), and a request's response time is the
    /// completion of its foreground chain, measured from its *original*
    /// arrival (deferred wait included).
    fn run_source_pipelined<S: RequestSource>(
        &mut self,
        source: &mut S,
        options: &ServeOptions,
    ) -> Result<(), SimError> {
        struct Admission {
            tenant: u32,
            arrival: Micros,
            submit: Micros,
            is_read: bool,
            fg: Vec<Stage>,
            bg: Vec<Stage>,
        }
        enum Ev {
            Arrive(usize),
            StageDone(usize),
        }
        struct Chain {
            stages: Vec<Stage>,
            next: usize,
            /// `Some(request)` marks the foreground chain whose
            /// completion is the request's response.
            request: Option<usize>,
        }
        /// Reserves the chain's next stage from `ready` and schedules its
        /// completion event; returns the stage's service start time.
        fn start_stage(
            chain: &Chain,
            id: usize,
            ready: Micros,
            pool: &mut ResourcePool,
            stats: &mut SimStats,
            obs: &mut Option<Box<SimObserver>>,
            queue: &mut EventQueue<Ev>,
        ) -> Micros {
            let stage = chain.stages[chain.next];
            let (start, end) = pool.reserve(stage.kind, stage.lpn, ready, stage.duration);
            stats.record_stage(stage.kind, stage.duration, start - ready);
            if let Some(o) = obs.as_mut() {
                o.record_stage(stage.kind, stage.duration, start - ready);
            }
            queue.push(end, Ev::StageDone(id));
            start
        }

        let tenanted = options.tenanted();
        let mut backpressure = Backpressure::new(options);
        // The virtual lumped clock admission runs against: the same
        // per-channel horizons the single-queue backend would advance, so
        // both backends admit, drop and defer exactly the same requests.
        let mut lumped_free_at = self.channel_free_at.clone();
        let mut admissions = Vec::new();
        loop {
            if self
                .stop_after
                .is_some_and(|stop| self.request_cursor >= stop)
            {
                break;
            }
            let Some(TenantRequest { tenant, request }) = source.next_request() else {
                break;
            };
            if let Some(o) = self.obs.as_mut() {
                o.on_arrival(request.arrival_us, &self.stats, &backpressure);
            }
            let at = self.request_cursor;
            self.request_cursor += 1;
            if tenanted {
                self.stats.tenants[tenant as usize].arrivals += 1;
            }
            let submit_us = match backpressure.admit(tenant, request.arrival_us) {
                Admit::Now => request.arrival_us,
                Admit::DeferredUntil(at) => {
                    self.stats.tenants[tenant as usize].deferred += 1;
                    at
                }
                Admit::Drop => {
                    self.stats.tenants[tenant as usize].dropped += 1;
                    continue;
                }
            };
            if tenanted {
                if let Some(o) = self.obs.as_mut() {
                    o.set_tenant(tenant);
                }
            }
            let records_before = self.ftl.journal().map_or(0, <[_]>::len);
            let plan = self.serve_logical(&request)?;
            if let Some(o) = self.obs.as_mut() {
                o.end_request_deferred(Micros(request.arrival_us));
            }
            let channel = (request.lpn % lumped_free_at.len() as u64) as usize;
            let start = Micros(submit_us).max(lumped_free_at[channel]);
            lumped_free_at[channel] = start + plan.fg + plan.bg;
            backpressure.commit(tenant, (start + plan.fg).as_f64());
            if tenanted {
                if let Some(o) = self.obs.as_mut() {
                    let lumped = (start - Micros(request.arrival_us)) + plan.fg;
                    o.tenant_lumped(tenant, lumped.as_f64());
                }
                let t = &mut self.stats.tenants[tenant as usize];
                t.served += 1;
                if plan.is_read {
                    t.reads += 1;
                } else {
                    t.writes += 1;
                }
            }
            admissions.push(Admission {
                tenant,
                arrival: Micros(request.arrival_us),
                submit: Micros(submit_us),
                is_read: plan.is_read,
                fg: expand_ops(&plan.fg_ops, &self.config.latency),
                bg: expand_ops(&plan.bg_ops, &self.config.latency),
            });
            self.ftl.record_commit(at);
            if let Some(err) = self.check_crash(at, request.arrival_us, records_before) {
                // Power dies mid-run: the event-driven phase never happens,
                // exactly like the single-queue backend stopping mid-trace.
                return Err(err);
            }
        }
        // Every sampled quantity is complete once the logical phase ends
        // (phase 2 resolves only measured timing, which the series never
        // reads), so flushing here keeps the two backends byte-identical.
        if self.stop_after.is_none() {
            if let Some(o) = self.obs.as_mut() {
                o.series_flush(&self.stats, &backpressure);
            }
        }

        let mut pool = ResourcePool::new(
            self.config.channels,
            self.config.dies_per_channel,
            self.config.planes_per_die,
            self.config.decoder_slots,
        );
        let mut queue = EventQueue::with_capacity(admissions.len() + 1);
        let mut chains: Vec<Chain> = Vec::new();
        // Arrivals are pushed in source order, so same-time arrivals pop
        // in source order too — the (time, seq) total order does the rest.
        // Deferred requests enter at their submission time, not arrival.
        for (i, adm) in admissions.iter().enumerate() {
            queue.push(adm.submit, Ev::Arrive(i));
        }
        while let Some(ev) = queue.pop() {
            match ev.payload {
                Ev::Arrive(i) => {
                    let adm = &mut admissions[i];
                    let fg = std::mem::take(&mut adm.fg);
                    let bg = std::mem::take(&mut adm.bg);
                    // Foreground first: host work wins ties against the
                    // background chain admitted at the same instant.
                    if fg.is_empty() {
                        // No device work: the response is just the defer
                        // wait (zero in replay, where submit == arrival).
                        let response = adm.submit - adm.arrival;
                        let (tenant, is_read) = (adm.tenant, adm.is_read);
                        self.stats.record_response(response, is_read);
                        if tenanted {
                            self.stats.tenants[tenant as usize].record_response(response);
                        }
                        if let Some(o) = self.obs.as_mut() {
                            o.deferred_finished(i, response);
                            if tenanted {
                                o.tenant_response(tenant, response);
                            }
                        }
                    } else {
                        let id = chains.len();
                        chains.push(Chain {
                            stages: fg,
                            next: 0,
                            request: Some(i),
                        });
                        let start = start_stage(
                            &chains[id],
                            id,
                            ev.time,
                            &mut pool,
                            &mut self.stats,
                            &mut self.obs,
                            &mut queue,
                        );
                        if let Some(o) = self.obs.as_mut() {
                            o.deferred_started(i, start);
                        }
                    }
                    if !bg.is_empty() {
                        let id = chains.len();
                        chains.push(Chain {
                            stages: bg,
                            next: 0,
                            request: None,
                        });
                        start_stage(
                            &chains[id],
                            id,
                            ev.time,
                            &mut pool,
                            &mut self.stats,
                            &mut self.obs,
                            &mut queue,
                        );
                    }
                }
                Ev::StageDone(id) => {
                    chains[id].next += 1;
                    if chains[id].next < chains[id].stages.len() {
                        start_stage(
                            &chains[id],
                            id,
                            ev.time,
                            &mut pool,
                            &mut self.stats,
                            &mut self.obs,
                            &mut queue,
                        );
                    } else if let Some(i) = chains[id].request {
                        let adm = &admissions[i];
                        let response = ev.time - adm.arrival;
                        self.stats.record_response(response, adm.is_read);
                        if tenanted {
                            self.stats.tenants[adm.tenant as usize].record_response(response);
                        }
                        if let Some(o) = self.obs.as_mut() {
                            o.deferred_finished(i, response);
                            if tenanted {
                                o.tenant_response(adm.tenant, response);
                            }
                        }
                    }
                }
            }
        }
        self.stats.makespan_us = pool.busy_until().as_f64();
        Ok(())
    }

    /// Environment-adjusted raw BER of one flash read of `lpn`, also
    /// recording the read for read-disturb accumulation (the adjustment
    /// sees the disturb accumulated *before* this read). Identity, with
    /// no state touched, when no environment is configured. Recovery
    /// retry rungs re-read the same wordline but are not re-recorded — a
    /// deliberate simplification keeping disturb a function of the
    /// logical access sequence alone.
    fn environment_read(&mut self, lpn: u64, ber: f64) -> f64 {
        match self.environment.as_mut() {
            Some(env) => {
                let adjusted = env.adjust_ber(lpn, ber);
                env.record_read(lpn);
                adjusted
            }
            None => ber,
        }
    }

    /// Records a program/refresh of `lpn` with the environment: the
    /// rewritten page starts disturb-free. GC relocations are *not*
    /// reported — a deliberate approximation (relocation copies the
    /// already-disturbed data pattern).
    fn environment_program(&mut self, lpn: u64) {
        if let Some(env) = self.environment.as_mut() {
            env.record_program(lpn);
        }
    }

    /// Host read of one page.
    fn read_page(&mut self, lpn: u64) -> Result<PageCharge, SimError> {
        let mut charge = PageCharge::default();
        if self.buffer.contains(lpn) {
            self.buffer.touch(lpn);
            self.stats.buffer_read_hits += 1;
            charge.fg = self.config.latency.timing.page_transfer;
            if let Some(o) = self.obs.as_mut() {
                o.span_stage("transfer", charge.fg);
            }
            if self.pipelined() {
                charge.fg_ops.push(FlashOp::HostTransfer { lpn });
            }
            return Ok(charge);
        }
        self.stats.flash_reads += 1;
        let mode = self
            .ftl
            .placement(lpn)
            .map(|(_, mode)| mode)
            .unwrap_or(CellMode::Normal);
        let pe = self.effective_pe(lpn);
        let age = self.reliability.age(lpn);

        if mode == CellMode::Reduced {
            self.stats.reduced_reads += 1;
            // NUNMA 3 keeps reduced pages below the sensing trigger, but
            // weaker schemes (a NUNMA 1 deployment, or extreme stress) may
            // still need soft sensing — charge it honestly.
            let ber = self.reliability.reduced_ber(pe, age);
            let ber = self.environment_read(lpn, ber);
            let required = self.config.schedule.required_levels(ber);
            if let Some(ctrl) = self.access_eval.as_mut() {
                // Keep the pool's recency fresh; pooled reads need no
                // migrations.
                let _ = ctrl.on_read(lpn, required, self.config.schedule.max_extra_levels());
            }
            let cycle = self.config.latency.timing.reduce_code_cycle;
            let (latency, levels, decode, iterations) = if required == 0 {
                (
                    self.config.latency.reduced_read_latency(),
                    0,
                    self.config.latency.decode_latency(1) + cycle,
                    1,
                )
            } else {
                let plan = self.read_plan(required, ber);
                (
                    plan.fg + cycle,
                    plan.levels,
                    plan.decode + cycle,
                    plan.iterations,
                )
            };
            charge.fg = latency;
            if let Some(o) = self.obs.as_mut() {
                let t = &self.config.latency.timing;
                o.span_stage("sense", t.sense_latency(levels));
                o.span_stage("transfer", t.transfer_latency(levels));
                o.span_stage("decode", decode);
                o.flash_read(levels, iterations);
            }
            if self.pipelined() {
                charge.fg_ops.push(FlashOp::Read {
                    lpn,
                    extra_levels: levels,
                    decode,
                });
            }
            self.apply_read_faults(lpn, ber, levels, &mut charge);
            return Ok(charge);
        }

        let ber = self.reliability.normal_ber(pe, age);
        let ber = self.environment_read(lpn, ber);
        let required = self.config.schedule.required_levels(ber);
        let plan = self.read_plan(required, ber);
        charge.fg = plan.fg;
        if let Some(o) = self.obs.as_mut() {
            let t = &self.config.latency.timing;
            o.span_stage("sense", t.sense_latency(plan.levels));
            o.span_stage("transfer", t.transfer_latency(plan.levels));
            o.span_stage("decode", plan.decode);
            o.flash_read(plan.levels, plan.iterations);
        }
        if self.pipelined() {
            charge.fg_ops.push(FlashOp::Read {
                lpn,
                extra_levels: plan.levels,
                decode: plan.decode,
            });
        }
        let slot = required.min(self.config.schedule.max_extra_levels()) as usize;
        self.stats.reads_by_sensing_level[slot] += 1;
        self.apply_read_faults(lpn, ber, plan.levels, &mut charge);

        // AccessEval: evaluate the read and apply any migrations as
        // background work.
        let migrations = match self.access_eval.as_mut() {
            Some(ctrl) => ctrl.on_read(lpn, required, self.config.schedule.max_extra_levels()),
            None => Vec::new(),
        };
        for migration in migrations {
            charge.bg += self.apply_migration(migration, &mut charge.bg_ops)?;
        }
        if let Some(ctrl) = self.access_eval.as_ref() {
            let s = ctrl.stats();
            self.stats.promotions = s.promotions;
            self.stats.demotions = s.demotions;
        }
        Ok(charge)
    }

    /// Expected decoder iterations for a read sensed with `levels` extra
    /// levels at raw BER `ber`: the measured profile when one is
    /// configured, otherwise the `typical_iterations` heuristic.
    fn decode_iterations(&self, levels: u32, ber: f64) -> u32 {
        match &self.config.measured_iterations {
            Some(profile) => profile.iterations(levels),
            None => self.config.latency.typical_iterations(ber),
        }
    }

    /// Scheme-specific cost of a normal-page read needing `required`
    /// extra sensing levels at raw BER `ber`: the lumped latency plus the
    /// (levels, decode-stage) split the pipelined model schedules.
    fn read_plan(&mut self, required: u32, ber: f64) -> ReadPlan {
        match self.config.scheme {
            Scheme::Baseline => {
                // No optimisation: the controller provisions sensing for
                // the worst-case data it might hold at this wear level.
                let worst = self.reliability.worst_case_ber(self.config.base_pe_cycles);
                let levels = self.config.schedule.required_levels(worst);
                let iterations = self.decode_iterations(levels, ber);
                ReadPlan {
                    fg: self.config.latency.read_latency(levels, iterations),
                    levels,
                    decode: self.config.latency.decode_latency(iterations),
                    iterations,
                }
            }
            _ => {
                // Progressive sensing (LDPC-in-SSD and the normal-page
                // path of both LevelAdjust schemes): retry with one more
                // soft level until the frame decodes. Sensing and
                // transfer accumulate to the same total as a one-shot
                // read at `required` levels; each failed attempt also
                // pays a decode pass, which lands on the decoder stage.
                let iterations = self.decode_iterations(required, ber);
                let latency = &self.config.latency;
                let one_shot = latency.read_latency(required, iterations);
                let wasted_decodes =
                    latency.decode_base + latency.decode_per_iteration * iterations as f64;
                let wasted = wasted_decodes * required as f64 * 0.5;
                ReadPlan {
                    fg: one_shot + wasted,
                    levels: required,
                    decode: latency.decode_latency(iterations) + wasted,
                    iterations,
                }
            }
        }
    }

    /// Host write of one page via the write-back buffer.
    fn write_page(&mut self, lpn: u64) -> Result<PageCharge, SimError> {
        self.host_pages_written += 1;
        self.reliability.record_write(lpn);
        let mut charge = PageCharge {
            fg: self.config.latency.timing.page_transfer,
            ..PageCharge::default()
        };
        if self.pipelined() {
            charge.fg_ops.push(FlashOp::HostTransfer { lpn });
        }
        if let Some(evicted) = self.buffer.write(lpn) {
            charge.bg += self.flush_page(evicted, &mut charge.bg_ops)?;
        }
        Ok(charge)
    }

    /// Programs a buffered page to flash (eviction or shutdown flush).
    fn flush_page(&mut self, lpn: u64, ops: &mut Vec<FlashOp>) -> Result<Micros, SimError> {
        let mode = self.write_mode(lpn);
        let cost = self.ftl.write(lpn, mode)?;
        self.environment_program(lpn);
        let mut time = self.account(cost, lpn, ops);
        time += self.apply_program_fault(lpn, ops)?;
        Ok(time)
    }

    /// Resolves the fault draws of one flash read: a possible transient
    /// die fault (cleared by a reset that stalls the plane), then the
    /// frame-decode outcome. A failed decode climbs the
    /// [`crate::recovery`] ladder; every attempted rung is priced like a
    /// first-class read at that rung's sensing depth — it extends the
    /// foreground charge and, under the pipelined model, occupies die,
    /// channel and decoder resources. No-op with faults disabled.
    fn apply_read_faults(&mut self, lpn: u64, ber: f64, levels: u32, charge: &mut PageCharge) {
        // Correlated clusters make frames inside the struck region harder
        // to decode than their (already cluster-elevated) BER alone says.
        let env_fer = self
            .environment
            .as_ref()
            .map_or(1.0, |env| env.fer_factor(lpn));
        let Some(faults) = self.faults.as_mut() else {
            return;
        };
        let cfg = self.config.faults.clone();
        let die_fault = faults.die_draw(lpn) < cfg.die_fault_prob;
        let u = faults.read_draw(lpn);
        let fer0 = (faults.frame_error_rate(ber, levels) * env_fer).clamp(0.0, 1.0);
        let retry_factor = faults.retry_fer_factor();
        if die_fault {
            self.stats.die_resets += 1;
            let reset = Micros(cfg.die_reset_us);
            charge.fg += reset;
            self.stats.recovery_latency_us += reset.as_f64();
            if let Some(o) = self.obs.as_mut() {
                o.span_stage("die_reset", reset);
                o.die_reset(lpn);
            }
            if self.pipelined() {
                charge.fg_ops.push(FlashOp::DieReset {
                    lpn,
                    duration: reset,
                });
            }
        }
        if u >= fer0 {
            self.stats.record_retry_depth(0);
            if let Some(o) = self.obs.as_mut() {
                o.retry(lpn, 0, true);
            }
            return;
        }
        let outcome = recovery::resolve(
            u,
            fer0,
            levels,
            self.config.schedule.max_extra_levels(),
            retry_factor,
            cfg.escalate_fer_factor,
            cfg.final_fer_factor,
        );
        for rung in &outcome.rungs {
            let iterations = self.decode_iterations(rung.levels, ber);
            let attempt = self.config.latency.read_latency(rung.levels, iterations);
            charge.fg += attempt;
            self.stats.recovery_latency_us += attempt.as_f64();
            self.stats.flash_reads += 1;
            self.stats.retry_reads += 1;
            if let Some(o) = self.obs.as_mut() {
                o.span_stage("retry", attempt);
            }
            if self.pipelined() {
                charge.fg_ops.push(FlashOp::Read {
                    lpn,
                    extra_levels: rung.levels,
                    decode: self.config.latency.decode_latency(iterations),
                });
            }
        }
        self.stats.record_retry_depth(outcome.depth());
        if let Some(o) = self.obs.as_mut() {
            o.retry(lpn, outcome.depth(), outcome.recovered);
        }
        if outcome.recovered {
            self.stats.recovered_reads += 1;
        } else {
            self.stats.uncorrectable_reads += 1;
        }
    }

    /// Draws the program-status stream for the page just programmed; a
    /// failure burns the failed ISPP attempt and retires the block as
    /// grown-bad, relocating its live pages and shrinking usable
    /// capacity. No-op with faults disabled.
    fn apply_program_fault(
        &mut self,
        lpn: u64,
        ops: &mut Vec<FlashOp>,
    ) -> Result<Micros, SimError> {
        let Some(faults) = self.faults.as_mut() else {
            return Ok(Micros::ZERO);
        };
        let prob = faults.config().program_fail_prob;
        if faults.program_draw(lpn) >= prob {
            return Ok(Micros::ZERO);
        }
        self.stats.program_failures += 1;
        // The failed ISPP attempt itself burned a program pulse before
        // the status check flagged it.
        let mut time = self.config.latency.timing.program;
        self.stats.flash_programs += 1;
        self.stats.recovery_latency_us += time.as_f64();
        if self.pipelined() {
            ops.push(FlashOp::Program { lpn });
        }
        let Some((phys, _)) = self.ftl.placement(lpn) else {
            return Ok(time);
        };
        let cost = self.ftl.retire_block(phys.block)?;
        self.stats.retired_blocks += 1;
        time += self.account(cost, lpn, ops);
        Ok(time)
    }

    /// One patrol-scrub visit: re-read every live page of the next
    /// non-retired block in round-robin order, refreshing (rewriting in
    /// place, age reset) any page whose modeled retention BER has crossed
    /// the refresh threshold. Runs as background work, so scrub traffic
    /// competes with host I/O exactly like GC does.
    fn patrol_scrub(&mut self, ops: &mut Vec<FlashOp>) -> Result<Micros, SimError> {
        let blocks = self.ftl.geometry().blocks();
        let mut target = None;
        for _ in 0..blocks {
            let candidate = BlockId(self.scrub_cursor);
            self.scrub_cursor = (self.scrub_cursor + 1) % blocks;
            if self.ftl.is_retired(candidate) {
                continue;
            }
            let lpns = self.ftl.block_lpns(candidate);
            if lpns.is_empty() {
                continue;
            }
            target = Some((candidate, lpns));
            break;
        }
        let Some((block, lpns)) = target else {
            return Ok(Micros::ZERO);
        };
        self.stats.scrub_runs += 1;
        let threshold = self.config.faults.scrub_refresh_ber;
        let mut time = Micros::ZERO;
        let mut visit_reads = 0u32;
        let mut visit_refreshes = 0u32;
        for lpn in lpns {
            visit_reads += 1;
            self.stats.scrub_reads += 1;
            self.stats.flash_reads += 1;
            time += self.config.latency.timing.read_transfer_latency(0);
            if self.pipelined() {
                ops.push(FlashOp::GcRead { lpn });
            }
            let Some((_, mode)) = self.ftl.placement(lpn) else {
                continue;
            };
            let pe = self.effective_pe(lpn);
            let age = self.reliability.age(lpn);
            let ber = match mode {
                CellMode::Normal => self.reliability.normal_ber(pe, age),
                CellMode::Reduced => self.reliability.reduced_ber(pe, age),
            };
            // The scrubber observes the page as the environment left it —
            // disturb-elevated BER is exactly what it exists to catch.
            let ber = self.environment_read(lpn, ber);
            if ber >= threshold {
                visit_refreshes += 1;
                self.stats.scrub_refreshes += 1;
                self.reliability.refresh(lpn);
                self.environment_program(lpn);
                let cost = self.ftl.write(lpn, mode)?;
                time += self.account(cost, lpn, ops);
            }
        }
        if let Some(o) = self.obs.as_mut() {
            o.scrub(block.0 as u64, visit_reads, visit_refreshes);
        }
        Ok(time)
    }

    /// Which mode a (re)written page should land in.
    fn write_mode(&mut self, lpn: u64) -> CellMode {
        match self.config.scheme {
            Scheme::Baseline | Scheme::LdpcInSsd => CellMode::Normal,
            Scheme::LevelAdjustOnly => {
                // Stay in the block mode the data already occupies; fresh
                // data fills reduced blocks while the cap allows.
                match self.ftl.placement(lpn) {
                    Some((_, mode)) => mode,
                    None if self.ftl.reduced_blocks() < self.max_reduced_blocks => {
                        CellMode::Reduced
                    }
                    None => CellMode::Normal,
                }
            }
            Scheme::FlexLevel => {
                let pooled = self
                    .access_eval
                    .as_ref()
                    .map(|c| matches!(c.placement(lpn), flexlevel::Placement::Reduced))
                    .unwrap_or(false);
                if pooled {
                    CellMode::Reduced
                } else {
                    CellMode::Normal
                }
            }
        }
    }

    /// Applies one AccessEval migration; returns its background cost and
    /// appends its op chain to `ops` under the pipelined model.
    fn apply_migration(
        &mut self,
        migration: Migration,
        ops: &mut Vec<FlashOp>,
    ) -> Result<Micros, SimError> {
        let lpn = migration.lpn();
        let mode = match migration {
            Migration::PromoteToReduced { .. } => CellMode::Reduced,
            Migration::DemoteToNormal { .. } => CellMode::Normal,
        };
        // Read the current copy, then rewrite it in the target mode.
        self.stats.flash_reads += 1;
        if self.pipelined() {
            ops.push(FlashOp::GcRead { lpn });
        }
        let read_cost = self.config.latency.timing.read_transfer_latency(0);
        let cost = self.ftl.write(lpn, mode)?;
        self.environment_program(lpn);
        Ok(read_cost + self.account(cost, lpn, ops))
    }

    /// Converts FTL op counts into device time, folds them into the
    /// statistics, and (pipelined model) appends the matching op chain.
    fn account(&mut self, cost: OpCost, lpn: u64, ops: &mut Vec<FlashOp>) -> Micros {
        if self.pipelined() {
            ops.extend(cost.flash_ops(lpn));
        }
        let t = &self.config.latency.timing;
        self.stats.flash_reads += cost.flash_reads;
        self.stats.flash_programs += cost.programs;
        self.stats.erases += cost.erases;
        self.stats.gc_runs += cost.gc_runs;
        self.stats.gc_migrated_pages += cost.gc_moved;
        t.read_transfer_latency(0) * cost.flash_reads as f64
            + t.program * cost.programs as f64
            + t.erase * cost.erases as f64
    }

    /// Wear of the block holding `lpn` (base device wear plus simulated
    /// erases).
    fn effective_pe(&self, lpn: u64) -> u32 {
        let extra = self
            .ftl
            .placement(lpn)
            .map(|(phys, _)| self.ftl.block_erases(phys.block))
            .unwrap_or(0);
        self.config.base_pe_cycles + extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use workloads::WorkloadSpec;

    fn small_trace(requests: u64, footprint: u64) -> Trace {
        WorkloadSpec::fin2()
            .with_requests(requests)
            .with_footprint(footprint)
            .generate(&mut StdRng::seed_from_u64(9))
    }

    fn run_scheme(scheme: Scheme, trace: &Trace) -> SimStats {
        let config = SsdConfig::scaled(scheme, 64);
        let mut sim = SsdSimulator::new(config);
        sim.run(trace).expect("simulation completes").clone()
    }

    #[test]
    fn all_schemes_complete() {
        let trace = small_trace(3_000, 2_000);
        for scheme in Scheme::ALL {
            let stats = run_scheme(scheme, &trace);
            assert_eq!(stats.host_requests(), 3_000, "{}", scheme.label());
            assert!(stats.mean_response().as_f64() > 0.0);
        }
    }

    #[test]
    fn footprint_must_fit() {
        let config = SsdConfig::scaled(Scheme::Baseline, 16);
        let capacity = config.geometry.logical_pages();
        let trace = small_trace(10, capacity + 1);
        let mut sim = SsdSimulator::new(config);
        assert!(matches!(
            sim.run(&trace),
            Err(SimError::FootprintTooLarge { .. })
        ));
    }

    #[test]
    fn measured_iterations_profile_changes_read_latency() {
        // A profile pinning every depth at the minimum iteration count
        // must make reads cheaper than the BER heuristic (which charges
        // ≥ 2 iterations and grows with BER); the default (None) keeps
        // the heuristic byte-for-byte (covered by the golden test).
        use ldpc::IterationProfile;
        let trace = small_trace(3_000, 2_000);
        let heuristic = run_scheme(Scheme::LdpcInSsd, &trace).mean_response();
        let fast_profile = IterationProfile::new([1.0; IterationProfile::SLOTS]);
        let config =
            SsdConfig::scaled(Scheme::LdpcInSsd, 64).with_measured_iterations(fast_profile);
        let mut sim = SsdSimulator::new(config);
        let measured = sim
            .run(&trace)
            .expect("simulation completes")
            .mean_response();
        assert!(
            measured < heuristic,
            "single-iteration profile {measured} must beat heuristic {heuristic}"
        );
    }

    #[test]
    fn baseline_slowest_flexlevel_fastest() {
        // The Figure 6(a) ordering: baseline ≫ LDPC-in-SSD > FlexLevel,
        // with LevelAdjust-only above LDPC-in-SSD (GC thrash).
        let trace = small_trace(6_000, 2_500);
        let base = run_scheme(Scheme::Baseline, &trace).mean_response();
        let ldpc = run_scheme(Scheme::LdpcInSsd, &trace).mean_response();
        let flex = run_scheme(Scheme::FlexLevel, &trace).mean_response();
        assert!(
            base > ldpc,
            "baseline {base} must exceed LDPC-in-SSD {ldpc}"
        );
        assert!(
            ldpc > flex,
            "LDPC-in-SSD {ldpc} must exceed FlexLevel {flex}"
        );
    }

    #[test]
    fn flexlevel_promotes_hot_data() {
        let trace = small_trace(8_000, 1_000);
        let stats = run_scheme(Scheme::FlexLevel, &trace);
        assert!(stats.promotions > 0, "hot data must get promoted");
        assert!(stats.reduced_reads > 0, "pooled reads must be served");
    }

    #[test]
    fn flexlevel_writes_exceed_ldpc_in_ssd() {
        // Figure 7(a): migrations cost extra programs.
        let trace = small_trace(8_000, 1_000);
        let ldpc = run_scheme(Scheme::LdpcInSsd, &trace);
        let flex = run_scheme(Scheme::FlexLevel, &trace);
        assert!(
            flex.flash_programs >= ldpc.flash_programs,
            "FlexLevel programs {} must not be below LDPC-in-SSD {}",
            flex.flash_programs,
            ldpc.flash_programs
        );
    }

    #[test]
    fn level_adjust_only_garbage_collects_more() {
        // Figure 6(a)'s explanation: LevelAdjust-only loses
        // over-provisioning and thrashes GC under write pressure.
        let spec = WorkloadSpec::prj1() // write-heavy
            .with_requests(6_000)
            .with_footprint(2_500);
        let trace = spec.generate(&mut StdRng::seed_from_u64(5));
        let ldpc = run_scheme(Scheme::LdpcInSsd, &trace);
        let la_only = run_scheme(Scheme::LevelAdjustOnly, &trace);
        assert!(
            la_only.erases > ldpc.erases,
            "LevelAdjust-only erases {} must exceed LDPC-in-SSD {}",
            la_only.erases,
            ldpc.erases
        );
    }

    #[test]
    fn buffer_absorbs_rewrites() {
        let trace = small_trace(4_000, 500);
        let stats = run_scheme(Scheme::LdpcInSsd, &trace);
        assert!(
            stats.buffer_read_hits > 0,
            "hot reads should hit the buffer"
        );
    }

    #[test]
    fn lower_wear_needs_less_sensing() {
        // Figure 6(b) mechanism: at lower P/E the schedule demands fewer
        // levels, shrinking the baseline/FlexLevel gap.
        let trace = small_trace(4_000, 2_000);
        let young = {
            let config = SsdConfig::scaled(Scheme::LdpcInSsd, 64).with_base_pe(3000);
            let mut sim = SsdSimulator::new(config);
            sim.run(&trace).unwrap().clone()
        };
        let old = {
            let config = SsdConfig::scaled(Scheme::LdpcInSsd, 64).with_base_pe(6000);
            let mut sim = SsdSimulator::new(config);
            sim.run(&trace).unwrap().clone()
        };
        assert!(old.soft_read_fraction() > young.soft_read_fraction());
        assert!(old.mean_read_response() > young.mean_read_response());
    }

    #[test]
    fn deterministic_given_seed() {
        let trace = small_trace(2_000, 1_000);
        let a = run_scheme(Scheme::FlexLevel, &trace);
        let b = run_scheme(Scheme::FlexLevel, &trace);
        assert_eq!(a, b);
    }

    #[test]
    fn pipelined_matches_logical_counters_and_reports_stages() {
        use crate::config::TimingModel;
        let trace = small_trace(3_000, 1_500);
        let single = run_scheme(Scheme::FlexLevel, &trace);
        let config =
            SsdConfig::scaled(Scheme::FlexLevel, 64).with_timing_model(TimingModel::Pipelined);
        let mut sim = SsdSimulator::new(config);
        let piped = sim.run(&trace).expect("pipelined run completes").clone();
        // The logical layer is shared: every operation counter matches
        // the single-queue run exactly.
        assert_eq!(piped.host_reads, single.host_reads);
        assert_eq!(piped.host_writes, single.host_writes);
        assert_eq!(piped.buffer_read_hits, single.buffer_read_hits);
        assert_eq!(piped.flash_reads, single.flash_reads);
        assert_eq!(piped.flash_programs, single.flash_programs);
        assert_eq!(piped.erases, single.erases);
        assert_eq!(piped.gc_runs, single.gc_runs);
        assert_eq!(piped.gc_migrated_pages, single.gc_migrated_pages);
        assert_eq!(piped.promotions, single.promotions);
        assert_eq!(piped.reduced_reads, single.reduced_reads);
        assert_eq!(piped.reads_by_sensing_level, single.reads_by_sensing_level);
        // Per-stage accounting is populated (and absent in single-queue).
        use crate::pipeline::StageKind;
        assert_eq!(piped.stage_sense.ops, piped.flash_reads);
        assert!(piped.stage_transfer.ops > 0);
        assert!(piped.stage_decode.ops > 0);
        assert!(piped.stage_sense.busy_us > 0.0);
        assert!(piped.makespan_us > 0.0);
        assert!(piped.throughput_rps() > 0.0);
        assert!(piped.stage_utilization(StageKind::Sense, 4) > 0.0);
        assert_eq!(single.stage_sense.ops, 0);
        assert!(single.makespan_us > 0.0);
        // Every host request got a response.
        assert_eq!(piped.responses_seen, 3_000);
    }

    #[test]
    fn pipelined_deterministic_across_runs() {
        use crate::config::TimingModel;
        let trace = small_trace(2_000, 1_000);
        let run = || {
            let config = SsdConfig::scaled(Scheme::FlexLevel, 64)
                .with_timing_model(TimingModel::Pipelined)
                .with_dies_per_channel(4)
                .with_decoder_slots(2);
            let mut sim = SsdSimulator::new(config);
            sim.run(&trace).expect("run completes").clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn nunma3_pool_beats_nunma1_pool() {
        // The NUNMA ablation in miniature: weaker reduced-state voltages
        // leave pooled pages needing soft sensing at high stress, so a
        // NUNMA1 FlexLevel deployment must not beat NUNMA3.
        let trace = small_trace(6_000, 1_500);
        let run = |nunma| {
            let mut config = SsdConfig::scaled(Scheme::FlexLevel, 64);
            config.nunma = nunma;
            let mut sim = SsdSimulator::new(config);
            sim.run(&trace).unwrap().mean_response().as_f64()
        };
        let n1 = run(flexlevel::NunmaScheme::Nunma1);
        let n3 = run(flexlevel::NunmaScheme::Nunma3);
        assert!(n3 <= n1, "NUNMA3 {n3} must not lose to NUNMA1 {n1}");
    }

    #[test]
    fn wear_aware_policy_runs_and_matches_host_counters() {
        let trace = small_trace(3_000, 1_200);
        let mut config = SsdConfig::scaled(Scheme::LdpcInSsd, 64);
        config.gc_policy = crate::ftl::GcPolicy::WearAware;
        let mut sim = SsdSimulator::new(config);
        let stats = sim.run(&trace).unwrap().clone();
        assert_eq!(stats.host_requests(), 3_000);
        let (lo, hi) = sim.ftl().erase_spread();
        assert!(lo <= hi);
    }

    #[test]
    fn more_channels_reduce_queueing() {
        let trace = small_trace(6_000, 2_000);
        let run = |channels: u32| {
            let config = SsdConfig::scaled(Scheme::Baseline, 64).with_channels(channels);
            let mut sim = SsdSimulator::new(config);
            sim.run(&trace).unwrap().mean_response().as_f64()
        };
        let one = run(1);
        let four = run(4);
        assert!(
            four < one,
            "4 channels ({four}) must beat 1 channel ({one}) under load"
        );
    }

    #[test]
    fn stats_are_internally_consistent() {
        let trace = small_trace(5_000, 1_500);
        let stats = run_scheme(Scheme::FlexLevel, &trace);
        // Sensing histogram covers exactly the normal-page host reads.
        let histogram: u64 = stats.reads_by_sensing_level.iter().sum();
        assert!(
            histogram + stats.reduced_reads + stats.buffer_read_hits >= stats.host_reads,
            "every host read is a buffer hit, a reduced read, or a sensed read"
        );
        // GC relocations are included in flash programs.
        assert!(stats.flash_programs >= stats.gc_migrated_pages);
        // Erases equal GC runs in this FTL (one victim per run).
        assert_eq!(stats.erases, stats.gc_runs);
    }
}
