//! Page-mapping flash translation layer with greedy garbage collection.
//!
//! The FTL maps logical pages to physical pages, maintains per-block
//! validity state and write frontiers, and reclaims space with greedy
//! (min-valid-count) garbage collection — the FlashSim configuration the
//! paper evaluates on. FlexLevel extends the classic design with *block
//! modes*: a block can operate in normal (4-level) or reduced (3-level,
//! ReduceCode) mode. A reduced block stores only 75 % as many pages, and
//! a block's mode can change only while it is erased.

use std::collections::VecDeque;

use flash_model::{BlockId, CellMode, DeviceGeometry, PhysicalPage};
use serde::{Deserialize, Serialize};

/// Flash operation counts produced by one FTL action; the simulator turns
/// these into latency and statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCost {
    /// Physical page reads.
    pub flash_reads: u64,
    /// Physical page programs.
    pub programs: u64,
    /// Block erases.
    pub erases: u64,
    /// Garbage-collection invocations.
    pub gc_runs: u64,
    /// Valid pages relocated by GC.
    pub gc_moved: u64,
}

impl OpCost {
    /// Accumulates another cost into this one.
    pub fn add(&mut self, other: OpCost) {
        self.flash_reads += other.flash_reads;
        self.programs += other.programs;
        self.erases += other.erases;
        self.gc_runs += other.gc_runs;
        self.gc_moved += other.gc_moved;
    }

    /// Expands the counts into a schedulable op chain for the pipelined
    /// timing model: every internal read becomes a sense+transfer copy,
    /// every program a transfer+program, every erase an erase stage.
    /// All ops are routed at `lpn` — the page whose write or migration
    /// triggered the work — which keeps the expansion deterministic
    /// without threading physical block numbers through the simulator.
    pub fn flash_ops(&self, lpn: u64) -> Vec<crate::pipeline::FlashOp> {
        use crate::pipeline::FlashOp;
        let n = self.flash_reads + self.programs + self.erases;
        let mut ops = Vec::with_capacity(n as usize);
        for _ in 0..self.flash_reads {
            ops.push(FlashOp::GcRead { lpn });
        }
        for _ in 0..self.programs {
            ops.push(FlashOp::Program { lpn });
        }
        for _ in 0..self.erases {
            ops.push(FlashOp::Erase { lpn });
        }
        ops
    }
}

/// FTL failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlError {
    /// The logical page is outside the exported capacity.
    LpnOutOfRange {
        /// The offending logical page.
        lpn: u64,
    },
    /// No free block could be reclaimed — the device is overfilled (the
    /// logical working set exceeds what the current mode mix can store).
    OutOfSpace,
}

impl std::fmt::Display for FtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtlError::LpnOutOfRange { lpn } => write!(f, "logical page {lpn} out of range"),
            FtlError::OutOfSpace => write!(f, "no reclaimable space left on device"),
        }
    }
}

impl std::error::Error for FtlError {}

/// Per-block bookkeeping.
#[derive(Debug, Clone)]
struct BlockState {
    mode: CellMode,
    /// Next unwritten page slot (`0..usable_pages`).
    frontier: u32,
    valid: u32,
    erases: u32,
    /// Grown-bad: the block failed a program status check and was
    /// permanently removed from service (never allocated, never a GC
    /// victim).
    retired: bool,
    /// Reverse map: which LPN each written page slot holds (`None` once
    /// invalidated).
    slots: Vec<Option<u64>>,
}

impl BlockState {
    fn new(pages_per_block: u32) -> BlockState {
        BlockState {
            mode: CellMode::Normal,
            frontier: 0,
            valid: 0,
            erases: 0,
            retired: false,
            slots: vec![None; pages_per_block as usize],
        }
    }

    fn usable_pages(&self, pages_per_block: u32) -> u32 {
        match self.mode {
            CellMode::Normal => pages_per_block,
            // ReduceCode stores 3 bits per 2 cells: 75% of the page slots.
            CellMode::Reduced => pages_per_block * 3 / 4,
        }
    }
}

/// Garbage-collection victim-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GcPolicy {
    /// Pure greedy: fewest valid pages wins (FlashSim default; what the
    /// paper evaluates on).
    #[default]
    Greedy,
    /// Greedy with wear leveling: ties on valid count break toward the
    /// least-erased block, spreading wear at zero extra relocation cost.
    WearAware,
}

/// The page-mapping FTL.
#[derive(Debug, Clone)]
pub struct PageMapFtl {
    geometry: DeviceGeometry,
    blocks: Vec<BlockState>,
    mapping: Vec<Option<PhysicalPage>>,
    free: VecDeque<BlockId>,
    frontier: [Option<BlockId>; 2],
    gc_low_watermark: u32,
    gc_policy: GcPolicy,
    /// Guards against re-entrant GC: relocations allocate from the free
    /// pool only, so an overfilled device errors instead of recursing.
    gc_active: bool,
}

fn mode_index(mode: CellMode) -> usize {
    match mode {
        CellMode::Normal => 0,
        CellMode::Reduced => 1,
    }
}

impl PageMapFtl {
    /// Creates an FTL over `geometry` with all blocks free and in normal
    /// mode. GC triggers when the free-block count falls to
    /// `gc_low_watermark` (min 2: one per mode frontier must always be
    /// obtainable).
    pub fn new(geometry: DeviceGeometry, gc_low_watermark: u32) -> PageMapFtl {
        let blocks = (0..geometry.blocks())
            .map(|_| BlockState::new(geometry.pages_per_block()))
            .collect();
        PageMapFtl {
            geometry,
            blocks,
            mapping: vec![None; geometry.logical_pages() as usize],
            free: geometry.block_ids().collect(),
            frontier: [None, None],
            gc_low_watermark: gc_low_watermark.max(4),
            gc_policy: GcPolicy::Greedy,
            gc_active: false,
        }
    }

    /// Selects the GC victim policy (default [`GcPolicy::Greedy`]).
    #[must_use]
    pub fn with_gc_policy(mut self, policy: GcPolicy) -> PageMapFtl {
        self.gc_policy = policy;
        self
    }

    /// The device geometry.
    pub fn geometry(&self) -> &DeviceGeometry {
        &self.geometry
    }

    /// Exported logical capacity in pages.
    pub fn logical_pages(&self) -> u64 {
        self.mapping.len() as u64
    }

    /// Where `lpn` currently lives, with the block's cell mode.
    pub fn placement(&self, lpn: u64) -> Option<(PhysicalPage, CellMode)> {
        let phys = (*self.mapping.get(lpn as usize)?)?;
        Some((phys, self.blocks[phys.block.0 as usize].mode))
    }

    /// Erase count of a block (its P/E wear within the simulation).
    pub fn block_erases(&self, block: BlockId) -> u32 {
        self.blocks[block.0 as usize].erases
    }

    /// Total erases across the device.
    pub fn total_erases(&self) -> u64 {
        self.blocks.iter().map(|b| b.erases as u64).sum()
    }

    /// Number of blocks currently operating in reduced mode.
    pub fn reduced_blocks(&self) -> u32 {
        self.blocks
            .iter()
            .filter(|b| b.mode == CellMode::Reduced)
            .count() as u32
    }

    /// Free (erased, unassigned) blocks.
    pub fn free_blocks(&self) -> u32 {
        self.free.len() as u32
    }

    /// Blocks retired as grown-bad.
    pub fn retired_blocks(&self) -> u32 {
        self.blocks.iter().filter(|b| b.retired).count() as u32
    }

    /// `true` if `block` has been retired from service.
    pub fn is_retired(&self, block: BlockId) -> bool {
        self.blocks[block.0 as usize].retired
    }

    /// The live logical pages currently stored in `block`, in slot order
    /// (patrol-scrub iteration and retirement relocation).
    pub fn block_lpns(&self, block: BlockId) -> Vec<u64> {
        self.blocks[block.0 as usize]
            .slots
            .iter()
            .flatten()
            .copied()
            .collect()
    }

    /// Permanently retires `block` as grown-bad: its live pages are
    /// relocated (read + program each, *no* erase — the block is dead,
    /// not recycled) and it never serves allocations or GC again, so the
    /// device's usable capacity shrinks by one block.
    ///
    /// Retiring an already-retired block is a no-op. Returns the flash
    /// work performed.
    ///
    /// # Errors
    ///
    /// [`FtlError::OutOfSpace`] if the relocations cannot be placed —
    /// enough grown-bad blocks legitimately make the device unusable.
    pub fn retire_block(&mut self, block: BlockId) -> Result<OpCost, FtlError> {
        let mut cost = OpCost::default();
        let idx = block.0 as usize;
        if self.blocks[idx].retired {
            return Ok(cost);
        }
        // Remove the block from every allocation source *before*
        // relocating, so its pages cannot land back inside it.
        for f in &mut self.frontier {
            if *f == Some(block) {
                *f = None;
            }
        }
        self.free.retain(|&b| b != block);
        self.blocks[idx].retired = true;
        let mode = self.blocks[idx].mode;
        let live = self.block_lpns(block);
        for lpn in live {
            cost.flash_reads += 1;
            self.invalidate(lpn);
            let phys = self.allocate(mode, &mut cost)?;
            self.commit(lpn, phys);
            cost.programs += 1;
        }
        let state = &mut self.blocks[idx];
        debug_assert_eq!(state.valid, 0, "all live pages were relocated");
        state.slots.iter_mut().for_each(|s| *s = None);
        state.frontier = 0;
        Ok(cost)
    }

    /// Writes `lpn` into a page of the requested `mode`, invalidating any
    /// previous copy. Returns the flash operations performed (the program
    /// itself plus any garbage collection it triggered).
    ///
    /// # Errors
    ///
    /// [`FtlError::LpnOutOfRange`] for an invalid LPN;
    /// [`FtlError::OutOfSpace`] if GC cannot reclaim a free block.
    pub fn write(&mut self, lpn: u64, mode: CellMode) -> Result<OpCost, FtlError> {
        if lpn >= self.logical_pages() {
            return Err(FtlError::LpnOutOfRange { lpn });
        }
        let mut cost = OpCost::default();
        self.invalidate(lpn);
        let phys = self.allocate(mode, &mut cost)?;
        self.commit(lpn, phys);
        cost.programs += 1;
        // Keep the free pool above the watermark for the next allocation.
        cost.add(self.collect_if_needed()?);
        Ok(cost)
    }

    /// Drops the mapping of `lpn` (overwrite or trim), marking its
    /// physical page invalid.
    pub fn invalidate(&mut self, lpn: u64) {
        if let Some(Some(phys)) = self.mapping.get(lpn as usize).copied() {
            let block = &mut self.blocks[phys.block.0 as usize];
            if block.slots[phys.page as usize].take().is_some() {
                block.valid -= 1;
            }
            self.mapping[lpn as usize] = None;
        }
    }

    fn commit(&mut self, lpn: u64, phys: PhysicalPage) {
        let block = &mut self.blocks[phys.block.0 as usize];
        block.slots[phys.page as usize] = Some(lpn);
        block.valid += 1;
        self.mapping[lpn as usize] = Some(phys);
    }

    /// Allocates the next page slot of the `mode` frontier, opening a new
    /// free block (switched to `mode`) when the frontier fills.
    fn allocate(&mut self, mode: CellMode, cost: &mut OpCost) -> Result<PhysicalPage, FtlError> {
        let idx = mode_index(mode);
        loop {
            if let Some(block_id) = self.frontier[idx] {
                let ppb = self.geometry.pages_per_block();
                let block = &mut self.blocks[block_id.0 as usize];
                if block.frontier < block.usable_pages(ppb) {
                    let page = block.frontier;
                    block.frontier += 1;
                    return Ok(PhysicalPage::new(block_id, page));
                }
                self.frontier[idx] = None; // frontier exhausted
            }
            let block_id = match self.free.pop_front() {
                Some(b) => b,
                None if !self.gc_active => {
                    // Emergency reclaim: the caller's GC watermark keeps
                    // this rare, but frontier turnover can exhaust frees.
                    self.collect_once(cost)?;
                    self.free.pop_front().ok_or(FtlError::OutOfSpace)?
                }
                // Mid-GC allocations must come from the free pool: the
                // watermark guarantees headroom, and re-entering GC here
                // could recurse without bound on an overfilled device.
                None => return Err(FtlError::OutOfSpace),
            };
            let block = &mut self.blocks[block_id.0 as usize];
            block.mode = mode; // legal: the block is erased
            block.frontier = 0;
            self.frontier[idx] = Some(block_id);
        }
    }

    /// Runs GC until the free pool is above the watermark, or until no
    /// block with reclaimable (invalid) pages remains — a device running
    /// at minimal over-provisioning legitimately idles below the
    /// watermark and reclaims lazily on demand.
    fn collect_if_needed(&mut self) -> Result<OpCost, FtlError> {
        let mut cost = OpCost::default();
        while (self.free.len() as u32) < self.gc_low_watermark {
            if !self.collect_once(&mut cost)? {
                break; // nothing reclaimable right now
            }
        }
        Ok(cost)
    }

    /// One greedy GC pass: relocate the min-valid block's live pages and
    /// erase it. Returns `Ok(false)` when no reclaimable victim exists.
    fn collect_once(&mut self, cost: &mut OpCost) -> Result<bool, FtlError> {
        let Some(victim) = self.pick_victim() else {
            return Ok(false);
        };
        self.gc_active = true;
        let result = self.collect_block(victim, cost);
        self.gc_active = false;
        result.map(|()| true)
    }

    fn collect_block(&mut self, victim: BlockId, cost: &mut OpCost) -> Result<(), FtlError> {
        cost.gc_runs += 1;
        let victim_mode = self.blocks[victim.0 as usize].mode;
        // Snapshot live pages; relocation programs invalidate them.
        let live: Vec<(u32, u64)> = self.blocks[victim.0 as usize]
            .slots
            .iter()
            .enumerate()
            .filter_map(|(slot, lpn)| lpn.map(|l| (slot as u32, l)))
            .collect();
        for (_, lpn) in &live {
            cost.flash_reads += 1;
            cost.gc_moved += 1;
            // Relocate within the same mode so pool/placement decisions
            // made by the policy layer survive GC.
            self.invalidate(*lpn);
            let phys = self.allocate(victim_mode, cost)?;
            self.commit(*lpn, phys);
            cost.programs += 1;
        }
        let block = &mut self.blocks[victim.0 as usize];
        debug_assert_eq!(block.valid, 0, "all live pages were relocated");
        block.slots.iter_mut().for_each(|s| *s = None);
        block.frontier = 0;
        block.erases += 1;
        block.mode = CellMode::Normal; // erased blocks revert to normal
        cost.erases += 1;
        self.free.push_back(victim);
        Ok(())
    }

    /// Greedy victim selection: the non-frontier, non-free block with the
    /// fewest valid pages (ties broken by lowest id). Blocks with no
    /// invalid pages are never picked — relocating them reclaims nothing
    /// and could cycle forever on a freshly filled device.
    fn pick_victim(&self) -> Option<BlockId> {
        // Score: (valid pages, tiebreak) — wear-aware mode breaks ties
        // (within one valid page) toward the least-erased block.
        let mut best: Option<(u32, u32, BlockId)> = None;
        for (i, block) in self.blocks.iter().enumerate() {
            let id = BlockId(i as u32);
            if block.retired {
                continue; // grown-bad: nothing to reclaim, ever
            }
            if self.frontier.contains(&Some(id)) {
                continue;
            }
            if block.frontier == 0 {
                continue; // unwritten (free or already erased)
            }
            if block.valid >= block.frontier {
                continue; // every written page is still valid
            }
            let tiebreak = match self.gc_policy {
                GcPolicy::Greedy => 0,
                GcPolicy::WearAware => block.erases,
            };
            let better = match best {
                None => true,
                // Strictly fewer valid pages always wins (same relocation
                // work as pure greedy); equal counts break toward the
                // policy's tiebreak (0 for greedy = first block wins).
                Some((v, t, _)) => block.valid < v || (block.valid == v && tiebreak < t),
            };
            if better {
                best = Some((block.valid, tiebreak, id));
            }
        }
        best.map(|(_, _, id)| id)
    }

    /// Spread of erase counts across blocks `(min, max)` — wear-leveling
    /// diagnostics.
    pub fn erase_spread(&self) -> (u32, u32) {
        let mut min = u32::MAX;
        let mut max = 0;
        for b in &self.blocks {
            min = min.min(b.erases);
            max = max.max(b.erases);
        }
        (if min == u32::MAX { 0 } else { min }, max)
    }

    /// Counts valid pages across the device (test/debug invariant).
    pub fn total_valid_pages(&self) -> u64 {
        self.blocks.iter().map(|b| b.valid as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ftl() -> PageMapFtl {
        // 16 blocks × 64 pages, 27% OP ⇒ 747 logical pages.
        PageMapFtl::new(DeviceGeometry::scaled(16).unwrap(), 2)
    }

    #[test]
    fn op_cost_expands_to_flash_ops() {
        use crate::pipeline::FlashOp;
        let cost = OpCost {
            flash_reads: 2,
            programs: 1,
            erases: 1,
            gc_runs: 1,
            gc_moved: 2,
        };
        let ops = cost.flash_ops(11);
        assert_eq!(
            ops,
            vec![
                FlashOp::GcRead { lpn: 11 },
                FlashOp::GcRead { lpn: 11 },
                FlashOp::Program { lpn: 11 },
                FlashOp::Erase { lpn: 11 },
            ]
        );
        assert!(OpCost::default().flash_ops(0).is_empty());
    }

    #[test]
    fn write_then_read_placement() {
        let mut ftl = small_ftl();
        let cost = ftl.write(5, CellMode::Normal).unwrap();
        assert_eq!(cost.programs, 1);
        assert_eq!(cost.erases, 0);
        let (phys, mode) = ftl.placement(5).unwrap();
        assert_eq!(mode, CellMode::Normal);
        assert!(ftl.geometry().contains(phys));
        assert_eq!(ftl.placement(6), None);
    }

    #[test]
    fn rewrite_invalidates_old_copy() {
        let mut ftl = small_ftl();
        ftl.write(5, CellMode::Normal).unwrap();
        let first = ftl.placement(5).unwrap().0;
        ftl.write(5, CellMode::Normal).unwrap();
        let second = ftl.placement(5).unwrap().0;
        assert_ne!(first, second);
        assert_eq!(ftl.total_valid_pages(), 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut ftl = small_ftl();
        let lpn = ftl.logical_pages();
        assert_eq!(
            ftl.write(lpn, CellMode::Normal),
            Err(FtlError::LpnOutOfRange { lpn })
        );
    }

    #[test]
    fn reduced_blocks_hold_three_quarters() {
        let mut ftl = small_ftl();
        let ppb = ftl.geometry().pages_per_block();
        // Fill one reduced block exactly: 48 pages.
        for lpn in 0..(ppb * 3 / 4) as u64 {
            ftl.write(lpn, CellMode::Reduced).unwrap();
        }
        assert_eq!(ftl.reduced_blocks(), 1);
        // The 49th write opens a second reduced block.
        ftl.write(100, CellMode::Reduced).unwrap();
        assert_eq!(ftl.reduced_blocks(), 2);
    }

    #[test]
    fn gc_reclaims_overwritten_space() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        // Write the whole logical space several times over; the device
        // must keep absorbing writes via GC.
        for round in 0..4 {
            for lpn in 0..logical {
                ftl.write(lpn, CellMode::Normal)
                    .unwrap_or_else(|e| panic!("round {round} lpn {lpn}: {e}"));
            }
        }
        assert_eq!(ftl.total_valid_pages(), logical);
        assert!(ftl.total_erases() > 0, "GC must have erased blocks");
        // Mapping stays consistent after heavy GC.
        for lpn in (0..logical).step_by(37) {
            let (phys, _) = ftl.placement(lpn).unwrap();
            assert!(ftl.geometry().contains(phys));
        }
    }

    #[test]
    fn gc_preserves_block_mode_of_relocated_data() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        // Put a quarter of the space in reduced pages, rest normal.
        for lpn in 0..logical {
            let mode = if lpn % 4 == 0 {
                CellMode::Reduced
            } else {
                CellMode::Normal
            };
            ftl.write(lpn, mode).unwrap();
        }
        // Churn normal pages to force GC.
        for _ in 0..3 {
            for lpn in (0..logical).filter(|l| l % 4 != 0) {
                ftl.write(lpn, CellMode::Normal).unwrap();
            }
        }
        // Reduced data must still live in reduced blocks.
        for lpn in (0..logical).filter(|l| l % 4 == 0) {
            let (_, mode) = ftl.placement(lpn).unwrap();
            assert_eq!(mode, CellMode::Reduced, "lpn {lpn} lost its mode");
        }
    }

    #[test]
    fn overfilled_reduced_device_errors() {
        // All-reduced operation drops usable capacity to 75% of raw; with
        // 27% OP the logical space no longer fits and the FTL must report
        // OutOfSpace rather than loop forever.
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        let mut failed = false;
        'outer: for _ in 0..3 {
            for lpn in 0..logical {
                if ftl.write(lpn, CellMode::Reduced).is_err() {
                    failed = true;
                    break 'outer;
                }
            }
        }
        assert!(
            failed,
            "the device cannot store 73% of raw in 75%-density pages plus frontier overheads"
        );
    }

    #[test]
    fn erase_counts_accumulate() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        for _ in 0..3 {
            for lpn in 0..logical {
                ftl.write(lpn, CellMode::Normal).unwrap();
            }
        }
        let total = ftl.total_erases();
        let max_block = (0..16).map(|b| ftl.block_erases(BlockId(b))).max().unwrap();
        assert!(
            total >= 16,
            "several blocks should have cycled, got {total}"
        );
        assert!(max_block >= 1);
    }

    #[test]
    fn invalidate_is_idempotent() {
        let mut ftl = small_ftl();
        ftl.write(9, CellMode::Normal).unwrap();
        ftl.invalidate(9);
        assert_eq!(ftl.placement(9), None);
        ftl.invalidate(9);
        assert_eq!(ftl.total_valid_pages(), 0);
    }

    #[test]
    fn wear_aware_gc_narrows_erase_spread() {
        let geometry = DeviceGeometry::scaled(16).unwrap();
        let run = |policy: GcPolicy| {
            let mut ftl = PageMapFtl::new(geometry, 4).with_gc_policy(policy);
            let logical = ftl.logical_pages();
            // Skewed rewrites: a hot tenth of the space is rewritten 9×
            // more often, concentrating invalidations.
            for round in 0..30u64 {
                for lpn in 0..logical / 10 {
                    ftl.write(lpn, CellMode::Normal).unwrap();
                }
                if round % 9 == 0 {
                    for lpn in logical / 10..logical {
                        ftl.write(lpn, CellMode::Normal).unwrap();
                    }
                }
            }
            ftl.erase_spread()
        };
        let (greedy_min, greedy_max) = run(GcPolicy::Greedy);
        let (wear_min, wear_max) = run(GcPolicy::WearAware);
        // Wear-aware must not widen the erase spread; with tie-breaking it
        // typically narrows it.
        assert!(
            wear_max - wear_min <= greedy_max - greedy_min,
            "wear-aware spread {}..{} vs greedy {}..{}",
            wear_min,
            wear_max,
            greedy_min,
            greedy_max
        );
    }

    #[test]
    fn retire_relocates_live_pages_and_shrinks_capacity() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        for lpn in 0..logical {
            ftl.write(lpn, CellMode::Normal).unwrap();
        }
        let (victim_page, _) = ftl.placement(0).unwrap();
        let victim = victim_page.block;
        let residents = ftl.block_lpns(victim);
        assert!(!residents.is_empty());
        let free_before = ftl.free_blocks();
        let cost = ftl.retire_block(victim).unwrap();
        // Every resident was read and re-programmed (emergency GC may add
        // more work on top); the dead block itself is never erased.
        assert!(cost.flash_reads as usize >= residents.len());
        assert!(cost.programs as usize >= residents.len());
        assert!(ftl.is_retired(victim));
        assert_eq!(ftl.retired_blocks(), 1);
        // All data survived, outside the dead block.
        assert_eq!(ftl.total_valid_pages(), logical);
        for lpn in residents {
            let (phys, _) = ftl.placement(lpn).unwrap();
            assert_ne!(phys.block, victim, "lpn {lpn} still in the dead block");
        }
        // The dead block never returns to the free pool.
        assert!(ftl.free_blocks() <= free_before);
        // Idempotent.
        assert_eq!(ftl.retire_block(victim).unwrap(), OpCost::default());
        assert_eq!(ftl.retired_blocks(), 1);
    }

    #[test]
    fn retired_blocks_are_never_reused_under_churn() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        for lpn in 0..logical {
            ftl.write(lpn, CellMode::Normal).unwrap();
        }
        let victim = ftl.placement(7).unwrap().0.block;
        ftl.retire_block(victim).unwrap();
        // Heavy rewrite churn with GC: the dead block must stay empty.
        for _ in 0..3 {
            for lpn in 0..logical {
                ftl.write(lpn, CellMode::Normal).unwrap();
            }
        }
        assert!(ftl.block_lpns(victim).is_empty());
        assert!(ftl.is_retired(victim));
        assert_eq!(ftl.total_valid_pages(), logical);
    }

    #[test]
    fn mass_retirement_exhausts_capacity() {
        // Retiring block after block must eventually surface OutOfSpace
        // instead of looping: capacity shrink is real.
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        for lpn in 0..logical {
            ftl.write(lpn, CellMode::Normal).unwrap();
        }
        let mut failed = false;
        for b in 0..ftl.geometry().blocks() {
            if ftl.retire_block(BlockId(b)).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "retiring every block must run out of space");
    }

    #[test]
    fn op_cost_accumulates() {
        let mut a = OpCost {
            flash_reads: 1,
            programs: 2,
            erases: 3,
            gc_runs: 4,
            gc_moved: 5,
        };
        a.add(OpCost {
            flash_reads: 10,
            programs: 20,
            erases: 30,
            gc_runs: 40,
            gc_moved: 50,
        });
        assert_eq!(a.flash_reads, 11);
        assert_eq!(a.programs, 22);
        assert_eq!(a.erases, 33);
        assert_eq!(a.gc_runs, 44);
        assert_eq!(a.gc_moved, 55);
    }
}
