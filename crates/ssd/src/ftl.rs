//! Page-mapping flash translation layer with greedy garbage collection.
//!
//! The FTL maps logical pages to physical pages, maintains per-block
//! validity state and write frontiers, and reclaims space with greedy
//! (min-valid-count) garbage collection — the FlashSim configuration the
//! paper evaluates on. FlexLevel extends the classic design with *block
//! modes*: a block can operate in normal (4-level) or reduced (3-level,
//! ReduceCode) mode. A reduced block stores only 75 % as many pages, and
//! a block's mode can change only while it is erased.

use std::collections::VecDeque;

use flash_model::{BlockId, CellMode, DeviceGeometry, PhysicalPage};
use serde::{Deserialize, Serialize};

use crate::recovery::ImageError;

/// Flash operation counts produced by one FTL action; the simulator turns
/// these into latency and statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCost {
    /// Physical page reads.
    pub flash_reads: u64,
    /// Physical page programs.
    pub programs: u64,
    /// Block erases.
    pub erases: u64,
    /// Garbage-collection invocations.
    pub gc_runs: u64,
    /// Valid pages relocated by GC.
    pub gc_moved: u64,
}

impl OpCost {
    /// Accumulates another cost into this one.
    pub fn add(&mut self, other: OpCost) {
        self.flash_reads += other.flash_reads;
        self.programs += other.programs;
        self.erases += other.erases;
        self.gc_runs += other.gc_runs;
        self.gc_moved += other.gc_moved;
    }

    /// Expands the counts into a schedulable op chain for the pipelined
    /// timing model: every internal read becomes a sense+transfer copy,
    /// every program a transfer+program, every erase an erase stage.
    /// All ops are routed at `lpn` — the page whose write or migration
    /// triggered the work — which keeps the expansion deterministic
    /// without threading physical block numbers through the simulator.
    pub fn flash_ops(&self, lpn: u64) -> Vec<crate::pipeline::FlashOp> {
        use crate::pipeline::FlashOp;
        let n = self.flash_reads + self.programs + self.erases;
        let mut ops = Vec::with_capacity(n as usize);
        for _ in 0..self.flash_reads {
            ops.push(FlashOp::GcRead { lpn });
        }
        for _ in 0..self.programs {
            ops.push(FlashOp::Program { lpn });
        }
        for _ in 0..self.erases {
            ops.push(FlashOp::Erase { lpn });
        }
        ops
    }
}

/// FTL failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FtlError {
    /// The logical page is outside the exported capacity.
    LpnOutOfRange {
        /// The offending logical page.
        lpn: u64,
    },
    /// No free block could be reclaimed — the device is overfilled (the
    /// logical working set exceeds what the current mode mix can store).
    OutOfSpace,
}

impl std::fmt::Display for FtlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FtlError::LpnOutOfRange { lpn } => write!(f, "logical page {lpn} out of range"),
            FtlError::OutOfSpace => write!(f, "no reclaimable space left on device"),
        }
    }
}

impl std::error::Error for FtlError {}

/// Per-block bookkeeping.
#[derive(Debug, Clone)]
struct BlockState {
    mode: CellMode,
    /// Next unwritten page slot (`0..usable_pages`).
    frontier: u32,
    valid: u32,
    erases: u32,
    /// Grown-bad: the block failed a program status check and was
    /// permanently removed from service (never allocated, never a GC
    /// victim).
    retired: bool,
    /// Reverse map: which LPN each written page slot holds (`None` once
    /// invalidated).
    slots: Vec<Option<u64>>,
}

impl BlockState {
    fn new(pages_per_block: u32) -> BlockState {
        BlockState {
            mode: CellMode::Normal,
            frontier: 0,
            valid: 0,
            erases: 0,
            retired: false,
            slots: vec![None; pages_per_block as usize],
        }
    }

    fn usable_pages(&self, pages_per_block: u32) -> u32 {
        match self.mode {
            CellMode::Normal => pages_per_block,
            // ReduceCode stores 3 bits per 2 cells: 75% of the page slots.
            CellMode::Reduced => pages_per_block * 3 / 4,
        }
    }
}

/// Garbage-collection victim-selection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum GcPolicy {
    /// Pure greedy: fewest valid pages wins (FlashSim default; what the
    /// paper evaluates on).
    #[default]
    Greedy,
    /// Greedy with wear leveling: ties on valid count break toward the
    /// least-erased block, spreading wear at zero extra relocation cost.
    WearAware,
}

/// One append-only journal entry: a primitive FTL mutation between a
/// checkpoint and a crash, in live mutation order. Replaying any journal
/// prefix over the checkpoint image reproduces the exact FTL state at
/// that point — this is what makes the device crash-consistent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalRecord {
    /// A page program: `lpn` landed at (`block`, `page`) in `mode`.
    Write {
        /// Logical page written.
        lpn: u64,
        /// Destination block.
        block: BlockId,
        /// Destination page slot within the block.
        page: u32,
        /// Cell mode of the destination block.
        mode: CellMode,
    },
    /// The previous copy of `lpn` was invalidated (overwrite or trim).
    Invalidate {
        /// Logical page whose mapping was dropped.
        lpn: u64,
    },
    /// A mapping restored without a program — the failed-retirement
    /// rollback re-exposing a copy that never left the flash array.
    Map {
        /// Logical page restored.
        lpn: u64,
        /// Block holding the surviving copy.
        block: BlockId,
        /// Page slot holding the surviving copy.
        page: u32,
    },
    /// `block` was erased and returned to the free pool (GC).
    Erase {
        /// The erased block.
        block: BlockId,
    },
    /// `block` was permanently retired as grown-bad.
    Retire {
        /// The retired block.
        block: BlockId,
    },
    /// The host request with this index was acknowledged: every record
    /// before this one is covered by the ack.
    Commit {
        /// Zero-based index of the acknowledged request in the trace.
        request: u64,
    },
}

/// A program interrupted by power loss. The page reads back
/// uncorrectable, so recovery must detect the slot and burn it — never
/// serve it as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornPage {
    /// Block holding the torn page.
    pub block: BlockId,
    /// Page slot within the block.
    pub page: u32,
}

/// What [`PageMapFtl::recover`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Journal records replayed onto the checkpoint image.
    pub journal_replayed: u64,
    /// Torn (interrupted-program) pages detected and discarded.
    pub torn_pages_discarded: u64,
}

/// Snapshot of one block's persistent state within an [`FtlImage`].
#[derive(Debug, Clone, PartialEq)]
pub struct BlockImage {
    /// Cell mode.
    pub mode: CellMode,
    /// Next unwritten page slot.
    pub frontier: u32,
    /// Valid (live) pages.
    pub valid: u32,
    /// Lifetime erase count.
    pub erases: u32,
    /// Grown-bad flag.
    pub retired: bool,
    /// Reverse map of written slots (`None` once invalidated).
    pub slots: Vec<Option<u64>>,
}

/// Durable snapshot of the FTL: geometry parameters, per-block state,
/// free-pool order and write frontiers. The logical→physical mapping is
/// *not* stored — [`PageMapFtl::from_image`] rebuilds it from the
/// per-block reverse maps, which doubles as an integrity check (an LPN
/// appearing in two slots is corruption, not a valid state).
#[derive(Debug, Clone, PartialEq)]
pub struct FtlImage {
    /// Physical block count (geometry).
    pub blocks: u32,
    /// Pages per block (geometry).
    pub pages_per_block: u32,
    /// Page payload bytes (geometry).
    pub page_bytes: u32,
    /// Over-provisioning percent (geometry).
    pub over_provisioning_pct: u32,
    /// GC trigger watermark.
    pub gc_low_watermark: u32,
    /// GC victim policy.
    pub gc_policy: GcPolicy,
    /// Per-block state, indexed by block id.
    pub block_states: Vec<BlockImage>,
    /// Free-pool order, front (next allocation) first.
    pub free: Vec<u32>,
    /// Active write frontier per mode (normal, reduced).
    pub frontier: [Option<u32>; 2],
}

/// FNV-1a, the repo's standard content fingerprint (also used for the
/// config fingerprint in [`crate::recovery`]).
pub(crate) struct Fnv(pub(crate) u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    pub(crate) fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

/// The page-mapping FTL.
#[derive(Debug, Clone)]
pub struct PageMapFtl {
    geometry: DeviceGeometry,
    blocks: Vec<BlockState>,
    mapping: Vec<Option<PhysicalPage>>,
    free: VecDeque<BlockId>,
    frontier: [Option<BlockId>; 2],
    gc_low_watermark: u32,
    gc_policy: GcPolicy,
    /// Guards against re-entrant GC: relocations allocate from the free
    /// pool only, so an overfilled device errors instead of recursing.
    gc_active: bool,
    /// Append-only mutation journal, `Some` only between a checkpoint
    /// and the next crash/checkpoint; `None` keeps steady-state runs
    /// allocation-free.
    journal: Option<Vec<JournalRecord>>,
    /// Mutations since the last periodic debug invariant sweep.
    ops_since_check: u64,
}

fn mode_index(mode: CellMode) -> usize {
    match mode {
        CellMode::Normal => 0,
        CellMode::Reduced => 1,
    }
}

impl PageMapFtl {
    /// Creates an FTL over `geometry` with all blocks free and in normal
    /// mode. GC triggers when the free-block count falls to
    /// `gc_low_watermark` (min 2: one per mode frontier must always be
    /// obtainable).
    pub fn new(geometry: DeviceGeometry, gc_low_watermark: u32) -> PageMapFtl {
        let blocks = (0..geometry.blocks())
            .map(|_| BlockState::new(geometry.pages_per_block()))
            .collect();
        PageMapFtl {
            geometry,
            blocks,
            mapping: vec![None; geometry.logical_pages() as usize],
            free: geometry.block_ids().collect(),
            frontier: [None, None],
            gc_low_watermark: gc_low_watermark.max(4),
            gc_policy: GcPolicy::Greedy,
            gc_active: false,
            journal: None,
            ops_since_check: 0,
        }
    }

    /// Selects the GC victim policy (default [`GcPolicy::Greedy`]).
    #[must_use]
    pub fn with_gc_policy(mut self, policy: GcPolicy) -> PageMapFtl {
        self.gc_policy = policy;
        self
    }

    /// The device geometry.
    pub fn geometry(&self) -> &DeviceGeometry {
        &self.geometry
    }

    /// Exported logical capacity in pages.
    pub fn logical_pages(&self) -> u64 {
        self.mapping.len() as u64
    }

    /// Where `lpn` currently lives, with the block's cell mode.
    pub fn placement(&self, lpn: u64) -> Option<(PhysicalPage, CellMode)> {
        let phys = (*self.mapping.get(lpn as usize)?)?;
        Some((phys, self.blocks[phys.block.0 as usize].mode))
    }

    /// Erase count of a block (its P/E wear within the simulation).
    pub fn block_erases(&self, block: BlockId) -> u32 {
        self.blocks[block.0 as usize].erases
    }

    /// Total erases across the device.
    pub fn total_erases(&self) -> u64 {
        self.blocks.iter().map(|b| b.erases as u64).sum()
    }

    /// Number of blocks currently operating in reduced mode.
    pub fn reduced_blocks(&self) -> u32 {
        self.blocks
            .iter()
            .filter(|b| b.mode == CellMode::Reduced)
            .count() as u32
    }

    /// Free (erased, unassigned) blocks.
    pub fn free_blocks(&self) -> u32 {
        self.free.len() as u32
    }

    /// Blocks retired as grown-bad.
    pub fn retired_blocks(&self) -> u32 {
        self.blocks.iter().filter(|b| b.retired).count() as u32
    }

    /// `true` if `block` has been retired from service.
    pub fn is_retired(&self, block: BlockId) -> bool {
        self.blocks[block.0 as usize].retired
    }

    /// The live logical pages currently stored in `block`, in slot order
    /// (patrol-scrub iteration and retirement relocation).
    pub fn block_lpns(&self, block: BlockId) -> Vec<u64> {
        self.blocks[block.0 as usize]
            .slots
            .iter()
            .flatten()
            .copied()
            .collect()
    }

    /// Permanently retires `block` as grown-bad: its live pages are
    /// relocated (read + program each, *no* erase — the block is dead,
    /// not recycled) and it never serves allocations or GC again, so the
    /// device's usable capacity shrinks by one block.
    ///
    /// Retiring an already-retired block is a no-op. Returns the flash
    /// work performed.
    ///
    /// # Errors
    ///
    /// [`FtlError::OutOfSpace`] if the relocations cannot be placed —
    /// enough grown-bad blocks legitimately make the device unusable.
    /// The failure is transactional per page: the page whose relocation
    /// failed keeps its original (still intact) copy, the block returns
    /// to service un-retired, and no mapping is lost. Pages already
    /// relocated stay at their new homes.
    pub fn retire_block(&mut self, block: BlockId) -> Result<OpCost, FtlError> {
        let mut cost = OpCost::default();
        let idx = block.0 as usize;
        if self.blocks[idx].retired {
            return Ok(cost);
        }
        // Remove the block from every allocation source *before*
        // relocating, so its pages cannot land back inside it.
        for f in &mut self.frontier {
            if *f == Some(block) {
                *f = None;
            }
        }
        self.free.retain(|&b| b != block);
        self.blocks[idx].retired = true;
        let mode = self.blocks[idx].mode;
        let live = self.block_lpns(block);
        for lpn in live {
            cost.flash_reads += 1;
            let old = self.mapping[lpn as usize];
            self.invalidate(lpn);
            match self.allocate(mode, &mut cost) {
                Ok(phys) => {
                    self.commit(lpn, phys);
                    cost.programs += 1;
                }
                Err(e) => {
                    // Out of space mid-retirement. The copy in this block
                    // never left the array, so re-expose it rather than
                    // lose an acknowledged write, and keep the block in
                    // service: a partly-evacuated bad block beats a
                    // corrupted frontier or a panic.
                    if let Some(phys) = old {
                        let state = &mut self.blocks[phys.block.0 as usize];
                        state.slots[phys.page as usize] = Some(lpn);
                        state.valid += 1;
                        self.mapping[lpn as usize] = Some(phys);
                        self.journal_push(JournalRecord::Map {
                            lpn,
                            block: phys.block,
                            page: phys.page,
                        });
                    }
                    self.blocks[idx].retired = false;
                    self.debug_full_check("failed retirement rollback");
                    return Err(e);
                }
            }
        }
        debug_assert_eq!(self.blocks[idx].valid, 0, "all live pages were relocated");
        self.journal_push(JournalRecord::Retire { block });
        self.debug_full_check("block retirement");
        Ok(cost)
    }

    /// Writes `lpn` into a page of the requested `mode`, invalidating any
    /// previous copy. Returns the flash operations performed (the program
    /// itself plus any garbage collection it triggered).
    ///
    /// # Errors
    ///
    /// [`FtlError::LpnOutOfRange`] for an invalid LPN;
    /// [`FtlError::OutOfSpace`] if GC cannot reclaim a free block.
    pub fn write(&mut self, lpn: u64, mode: CellMode) -> Result<OpCost, FtlError> {
        if lpn >= self.logical_pages() {
            return Err(FtlError::LpnOutOfRange { lpn });
        }
        let mut cost = OpCost::default();
        self.invalidate(lpn);
        let phys = self.allocate(mode, &mut cost)?;
        self.commit(lpn, phys);
        cost.programs += 1;
        // Keep the free pool above the watermark for the next allocation.
        cost.add(self.collect_if_needed()?);
        self.debug_tick(lpn);
        Ok(cost)
    }

    /// Drops the mapping of `lpn` (overwrite or trim), marking its
    /// physical page invalid.
    pub fn invalidate(&mut self, lpn: u64) {
        if let Some(Some(phys)) = self.mapping.get(lpn as usize).copied() {
            let block = &mut self.blocks[phys.block.0 as usize];
            if block.slots[phys.page as usize].take().is_some() {
                block.valid -= 1;
            }
            self.mapping[lpn as usize] = None;
            self.journal_push(JournalRecord::Invalidate { lpn });
            self.debug_tick(lpn);
        }
    }

    fn commit(&mut self, lpn: u64, phys: PhysicalPage) {
        let block = &mut self.blocks[phys.block.0 as usize];
        block.slots[phys.page as usize] = Some(lpn);
        block.valid += 1;
        let mode = block.mode;
        self.mapping[lpn as usize] = Some(phys);
        self.journal_push(JournalRecord::Write {
            lpn,
            block: phys.block,
            page: phys.page,
            mode,
        });
    }

    /// Allocates the next page slot of the `mode` frontier, opening a new
    /// free block (switched to `mode`) when the frontier fills.
    fn allocate(&mut self, mode: CellMode, cost: &mut OpCost) -> Result<PhysicalPage, FtlError> {
        let idx = mode_index(mode);
        loop {
            if let Some(block_id) = self.frontier[idx] {
                let ppb = self.geometry.pages_per_block();
                let block = &mut self.blocks[block_id.0 as usize];
                if block.frontier < block.usable_pages(ppb) {
                    let page = block.frontier;
                    block.frontier += 1;
                    return Ok(PhysicalPage::new(block_id, page));
                }
                self.frontier[idx] = None; // frontier exhausted
            }
            let block_id = match self.free.pop_front() {
                Some(b) => b,
                None if !self.gc_active => {
                    // Emergency reclaim: the caller's GC watermark keeps
                    // this rare, but frontier turnover can exhaust frees.
                    self.collect_once(cost)?;
                    self.free.pop_front().ok_or(FtlError::OutOfSpace)?
                }
                // Mid-GC allocations must come from the free pool: the
                // watermark guarantees headroom, and re-entering GC here
                // could recurse without bound on an overfilled device.
                None => return Err(FtlError::OutOfSpace),
            };
            let block = &mut self.blocks[block_id.0 as usize];
            block.mode = mode; // legal: the block is erased
            block.frontier = 0;
            self.frontier[idx] = Some(block_id);
        }
    }

    /// Runs GC until the free pool is above the watermark, or until no
    /// block with reclaimable (invalid) pages remains — a device running
    /// at minimal over-provisioning legitimately idles below the
    /// watermark and reclaims lazily on demand.
    fn collect_if_needed(&mut self) -> Result<OpCost, FtlError> {
        let mut cost = OpCost::default();
        while (self.free.len() as u32) < self.gc_low_watermark {
            if !self.collect_once(&mut cost)? {
                break; // nothing reclaimable right now
            }
        }
        Ok(cost)
    }

    /// One greedy GC pass: relocate the min-valid block's live pages and
    /// erase it. Returns `Ok(false)` when no reclaimable victim exists.
    fn collect_once(&mut self, cost: &mut OpCost) -> Result<bool, FtlError> {
        let Some(victim) = self.pick_victim() else {
            return Ok(false);
        };
        self.gc_active = true;
        let result = self.collect_block(victim, cost);
        self.gc_active = false;
        result.map(|()| true)
    }

    fn collect_block(&mut self, victim: BlockId, cost: &mut OpCost) -> Result<(), FtlError> {
        cost.gc_runs += 1;
        let victim_mode = self.blocks[victim.0 as usize].mode;
        // Snapshot live pages; relocation programs invalidate them.
        let live: Vec<(u32, u64)> = self.blocks[victim.0 as usize]
            .slots
            .iter()
            .enumerate()
            .filter_map(|(slot, lpn)| lpn.map(|l| (slot as u32, l)))
            .collect();
        for (_, lpn) in &live {
            cost.flash_reads += 1;
            cost.gc_moved += 1;
            // Relocate within the same mode so pool/placement decisions
            // made by the policy layer survive GC.
            self.invalidate(*lpn);
            let phys = self.allocate(victim_mode, cost)?;
            self.commit(*lpn, phys);
            cost.programs += 1;
        }
        let block = &mut self.blocks[victim.0 as usize];
        debug_assert_eq!(block.valid, 0, "all live pages were relocated");
        block.slots.iter_mut().for_each(|s| *s = None);
        block.frontier = 0;
        block.erases += 1;
        block.mode = CellMode::Normal; // erased blocks revert to normal
        cost.erases += 1;
        self.free.push_back(victim);
        self.journal_push(JournalRecord::Erase { block: victim });
        self.debug_full_check("gc relocation");
        Ok(())
    }

    /// Greedy victim selection: the non-frontier, non-free block with the
    /// fewest valid pages (ties broken by lowest id). Blocks with no
    /// invalid pages are never picked — relocating them reclaims nothing
    /// and could cycle forever on a freshly filled device.
    fn pick_victim(&self) -> Option<BlockId> {
        // Score: (valid pages, tiebreak) — wear-aware mode breaks ties
        // (within one valid page) toward the least-erased block.
        let mut best: Option<(u32, u32, BlockId)> = None;
        for (i, block) in self.blocks.iter().enumerate() {
            let id = BlockId(i as u32);
            if block.retired {
                continue; // grown-bad: nothing to reclaim, ever
            }
            if self.frontier.contains(&Some(id)) {
                continue;
            }
            if block.frontier == 0 {
                continue; // unwritten (free or already erased)
            }
            if block.valid >= block.frontier {
                continue; // every written page is still valid
            }
            let tiebreak = match self.gc_policy {
                GcPolicy::Greedy => 0,
                GcPolicy::WearAware => block.erases,
            };
            let better = match best {
                None => true,
                // Strictly fewer valid pages always wins (same relocation
                // work as pure greedy); equal counts break toward the
                // policy's tiebreak (0 for greedy = first block wins).
                Some((v, t, _)) => block.valid < v || (block.valid == v && tiebreak < t),
            };
            if better {
                best = Some((block.valid, tiebreak, id));
            }
        }
        best.map(|(_, _, id)| id)
    }

    /// Spread of erase counts across blocks `(min, max)` — wear-leveling
    /// diagnostics.
    pub fn erase_spread(&self) -> (u32, u32) {
        let mut min = u32::MAX;
        let mut max = 0;
        for b in &self.blocks {
            min = min.min(b.erases);
            max = max.max(b.erases);
        }
        (if min == u32::MAX { 0 } else { min }, max)
    }

    /// Counts valid pages across the device (test/debug invariant).
    pub fn total_valid_pages(&self) -> u64 {
        self.blocks.iter().map(|b| b.valid as u64).sum()
    }

    /// Starts (or restarts) the append-only mutation journal: subsequent
    /// writes, invalidations, GC moves and retirements append
    /// [`JournalRecord`]s. The simulator calls this when it checkpoints;
    /// journaling is off by default.
    pub fn enable_journal(&mut self) {
        self.journal = Some(Vec::new());
    }

    /// The journal accumulated since [`enable_journal`](Self::enable_journal),
    /// or `None` when journaling is off.
    pub fn journal(&self) -> Option<&[JournalRecord]> {
        self.journal.as_deref()
    }

    /// Appends a [`JournalRecord::Commit`] marking host request
    /// `request` as acknowledged (no-op when journaling is off).
    pub fn record_commit(&mut self, request: u64) {
        self.journal_push(JournalRecord::Commit { request });
    }

    #[inline]
    fn journal_push(&mut self, record: JournalRecord) {
        if let Some(journal) = self.journal.as_mut() {
            journal.push(record);
        }
    }

    /// Debug-build consistency hooks on the write/invalidate hot path: a
    /// cheap local mapping↔reverse-map check on every mutation plus a
    /// full [`check_invariants`](Self::check_invariants) sweep every
    /// 1024 mutations.
    #[inline]
    fn debug_tick(&mut self, lpn: u64) {
        self.ops_since_check = self.ops_since_check.wrapping_add(1);
        #[cfg(debug_assertions)]
        {
            if let Some(Some(phys)) = self.mapping.get(lpn as usize).copied() {
                let slot = self.blocks[phys.block.0 as usize].slots[phys.page as usize];
                assert_eq!(
                    slot,
                    Some(lpn),
                    "mapping and reverse map disagree for lpn {lpn}"
                );
            }
            if self.ops_since_check >= 1024 {
                self.ops_since_check = 0;
                self.debug_full_check("periodic sweep");
            }
        }
        #[cfg(not(debug_assertions))]
        let _ = lpn;
    }

    /// Debug-build full invariant sweep; a violation is a simulator bug,
    /// so it panics with the failing invariant and the mutating context.
    fn debug_full_check(&self, context: &str) {
        #[cfg(debug_assertions)]
        if let Err(detail) = self.check_invariants() {
            panic!("FTL invariant violated after {context}: {detail}");
        }
        #[cfg(not(debug_assertions))]
        let _ = context;
    }

    /// Verifies every structural FTL invariant, returning a description
    /// of the first violation found:
    ///
    /// - every live LPN maps to exactly one valid physical page, and the
    ///   per-block reverse maps agree with the forward mapping;
    /// - per-block valid counts reconcile with the reverse maps;
    /// - no slot at or beyond a block's write frontier holds data, and
    ///   no frontier exceeds the block's usable pages;
    /// - the free pool holds only erased, unretired blocks, without
    ///   duplicates;
    /// - active write frontiers point at in-service blocks of the
    ///   matching mode that are not simultaneously free.
    ///
    /// Debug builds run this after GC and retirement and periodically
    /// during writes; [`recover`](Self::recover) runs it unconditionally
    /// on the rebuilt state.
    pub fn check_invariants(&self) -> Result<(), String> {
        let ppb = self.geometry.pages_per_block();
        if self.blocks.len() != self.geometry.blocks() as usize {
            return Err(format!(
                "block table holds {} entries for {} physical blocks",
                self.blocks.len(),
                self.geometry.blocks()
            ));
        }
        if self.mapping.len() != self.geometry.logical_pages() as usize {
            return Err(format!(
                "mapping holds {} entries for {} logical pages",
                self.mapping.len(),
                self.geometry.logical_pages()
            ));
        }
        for (i, block) in self.blocks.iter().enumerate() {
            if block.slots.len() != ppb as usize {
                return Err(format!(
                    "block {i}: reverse map has {} slots, geometry has {ppb}",
                    block.slots.len()
                ));
            }
            if block.frontier > block.usable_pages(ppb) {
                return Err(format!(
                    "block {i}: frontier {} beyond {} usable pages",
                    block.frontier,
                    block.usable_pages(ppb)
                ));
            }
            let mut valid = 0u32;
            for (page, slot) in block.slots.iter().enumerate() {
                let Some(lpn) = *slot else { continue };
                if page as u32 >= block.frontier {
                    return Err(format!(
                        "block {i} page {page}: data at or beyond frontier {}",
                        block.frontier
                    ));
                }
                valid += 1;
                let expected = PhysicalPage::new(BlockId(i as u32), page as u32);
                match self.mapping.get(lpn as usize) {
                    Some(Some(phys)) if *phys == expected => {}
                    Some(Some(phys)) => {
                        return Err(format!(
                            "lpn {lpn}: reverse map says block {i} page {page}, \
                             mapping says block {} page {}",
                            phys.block.0, phys.page
                        ));
                    }
                    Some(None) => {
                        return Err(format!(
                            "lpn {lpn}: live in block {i} page {page} but unmapped"
                        ));
                    }
                    None => {
                        return Err(format!(
                            "block {i} page {page}: slot holds out-of-range lpn {lpn}"
                        ));
                    }
                }
            }
            if valid != block.valid {
                return Err(format!(
                    "block {i}: valid count {} but {valid} live slots",
                    block.valid
                ));
            }
        }
        for (lpn, mapped) in self.mapping.iter().enumerate() {
            let Some(phys) = mapped else { continue };
            let slot = self
                .blocks
                .get(phys.block.0 as usize)
                .and_then(|b| b.slots.get(phys.page as usize))
                .copied()
                .flatten();
            if slot != Some(lpn as u64) {
                return Err(format!(
                    "lpn {lpn}: mapped to block {} page {} but that slot holds {slot:?}",
                    phys.block.0, phys.page
                ));
            }
        }
        let mut in_free = vec![false; self.blocks.len()];
        for &BlockId(b) in &self.free {
            let Some(state) = self.blocks.get(b as usize) else {
                return Err(format!("free pool references unknown block {b}"));
            };
            if in_free[b as usize] {
                return Err(format!("block {b} appears twice in the free pool"));
            }
            in_free[b as usize] = true;
            if state.retired {
                return Err(format!("retired block {b} in the free pool"));
            }
            if state.frontier != 0 || state.valid != 0 {
                return Err(format!(
                    "free block {b} is not erased (frontier {}, valid {})",
                    state.frontier, state.valid
                ));
            }
        }
        for (idx, entry) in self.frontier.iter().enumerate() {
            let Some(BlockId(b)) = *entry else { continue };
            let Some(state) = self.blocks.get(b as usize) else {
                return Err(format!("frontier {idx} references unknown block {b}"));
            };
            if state.retired {
                return Err(format!("frontier {idx} points at retired block {b}"));
            }
            if in_free[b as usize] {
                return Err(format!("frontier {idx} points at free block {b}"));
            }
            if mode_index(state.mode) != idx {
                return Err(format!(
                    "frontier {idx} points at block {b} of the wrong mode"
                ));
            }
        }
        Ok(())
    }

    /// FNV-1a fingerprint over the complete canonical FTL state:
    /// per-block metadata and reverse maps, the forward mapping, free
    /// order, frontiers and GC configuration. Two FTLs with equal
    /// digests are bit-identical for every observable purpose, which is
    /// how the crash-torture harness proves that full-journal recovery
    /// reproduces the live device.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(self.blocks.len() as u64);
        for block in &self.blocks {
            h.byte(mode_index(block.mode) as u8);
            h.u32(block.frontier);
            h.u32(block.valid);
            h.u32(block.erases);
            h.byte(block.retired as u8);
            for slot in &block.slots {
                match slot {
                    Some(lpn) => {
                        h.byte(1);
                        h.u64(*lpn);
                    }
                    None => h.byte(0),
                }
            }
        }
        for mapped in &self.mapping {
            match mapped {
                Some(phys) => {
                    h.byte(1);
                    h.u32(phys.block.0);
                    h.u32(phys.page);
                }
                None => h.byte(0),
            }
        }
        h.u64(self.free.len() as u64);
        for &BlockId(b) in &self.free {
            h.u32(b);
        }
        for entry in &self.frontier {
            match entry {
                Some(BlockId(b)) => {
                    h.byte(1);
                    h.u32(*b);
                }
                None => h.byte(0),
            }
        }
        h.u32(self.gc_low_watermark);
        h.byte(match self.gc_policy {
            GcPolicy::Greedy => 0,
            GcPolicy::WearAware => 1,
        });
        h.0
    }

    /// Captures the FTL's durable state as an [`FtlImage`]. The journal
    /// is deliberately excluded — it is persisted separately so a
    /// checkpoint plus a journal tail reconstruct any later state.
    pub fn snapshot(&self) -> FtlImage {
        FtlImage {
            blocks: self.geometry.blocks(),
            pages_per_block: self.geometry.pages_per_block(),
            page_bytes: self.geometry.page_bytes(),
            over_provisioning_pct: self.geometry.over_provisioning_pct(),
            gc_low_watermark: self.gc_low_watermark,
            gc_policy: self.gc_policy,
            block_states: self
                .blocks
                .iter()
                .map(|b| BlockImage {
                    mode: b.mode,
                    frontier: b.frontier,
                    valid: b.valid,
                    erases: b.erases,
                    retired: b.retired,
                    slots: b.slots.clone(),
                })
                .collect(),
            free: self.free.iter().map(|b| b.0).collect(),
            frontier: [self.frontier[0].map(|b| b.0), self.frontier[1].map(|b| b.0)],
        }
    }

    /// Rebuilds an FTL from a checkpoint image, reconstructing the
    /// forward mapping from the per-block reverse maps and validating
    /// the image as it goes (an untrusted image fails with a typed
    /// error, never a panic).
    ///
    /// # Errors
    ///
    /// [`ImageError::Corrupt`] on any internal inconsistency: bad
    /// geometry, wrong vector lengths, out-of-range references,
    /// duplicate LPNs, or valid counts that do not reconcile.
    pub fn from_image(image: &FtlImage) -> Result<PageMapFtl, ImageError> {
        let geometry = DeviceGeometry::new(
            image.blocks,
            image.pages_per_block,
            image.page_bytes,
            image.over_provisioning_pct,
        )
        .map_err(|_| ImageError::Corrupt("invalid device geometry"))?;
        if image.block_states.len() != image.blocks as usize {
            return Err(ImageError::Corrupt("block state count mismatch"));
        }
        let ppb = geometry.pages_per_block();
        let logical = geometry.logical_pages();
        let mut blocks = Vec::with_capacity(image.block_states.len());
        for b in &image.block_states {
            if b.slots.len() != ppb as usize {
                return Err(ImageError::Corrupt("reverse map length mismatch"));
            }
            blocks.push(BlockState {
                mode: b.mode,
                frontier: b.frontier,
                valid: b.valid,
                erases: b.erases,
                retired: b.retired,
                slots: b.slots.clone(),
            });
        }
        let mut mapping: Vec<Option<PhysicalPage>> = vec![None; logical as usize];
        for (i, block) in blocks.iter().enumerate() {
            if block.frontier > block.usable_pages(ppb) {
                return Err(ImageError::Corrupt("frontier beyond usable pages"));
            }
            let mut valid = 0u32;
            for (page, slot) in block.slots.iter().enumerate() {
                let Some(lpn) = *slot else { continue };
                if lpn >= logical {
                    return Err(ImageError::Corrupt("slot lpn out of range"));
                }
                if page as u32 >= block.frontier {
                    return Err(ImageError::Corrupt("slot data beyond frontier"));
                }
                if mapping[lpn as usize].is_some() {
                    return Err(ImageError::Corrupt("lpn mapped by two slots"));
                }
                mapping[lpn as usize] = Some(PhysicalPage::new(BlockId(i as u32), page as u32));
                valid += 1;
            }
            if valid != block.valid {
                return Err(ImageError::Corrupt("valid count mismatch"));
            }
        }
        let mut free = VecDeque::with_capacity(image.free.len());
        let mut in_free = vec![false; blocks.len()];
        for &b in &image.free {
            let Some(seen) = in_free.get_mut(b as usize) else {
                return Err(ImageError::Corrupt("free entry out of range"));
            };
            if *seen {
                return Err(ImageError::Corrupt("duplicate free entry"));
            }
            *seen = true;
            free.push_back(BlockId(b));
        }
        let mut frontier = [None, None];
        for (slot, entry) in frontier.iter_mut().zip(image.frontier) {
            if let Some(b) = entry {
                if b >= image.blocks {
                    return Err(ImageError::Corrupt("frontier entry out of range"));
                }
                *slot = Some(BlockId(b));
            }
        }
        Ok(PageMapFtl {
            geometry,
            blocks,
            mapping,
            free,
            frontier,
            gc_low_watermark: image.gc_low_watermark.max(4),
            gc_policy: image.gc_policy,
            gc_active: false,
            journal: None,
            ops_since_check: 0,
        })
    }

    /// Sudden-power-off recovery: rebuilds the FTL from a checkpoint
    /// `image`, replays a `journal` prefix (everything that reached the
    /// flash array before power was cut), discards a torn
    /// interrupted-program page if one is reported, and verifies the
    /// result with [`check_invariants`](Self::check_invariants).
    ///
    /// Replaying the *full* journal reproduces the live device's
    /// [`digest`](Self::digest) exactly; replaying any prefix yields the
    /// consistent intermediate state at that cut — both properties are
    /// enforced by the crash-torture harness.
    ///
    /// # Errors
    ///
    /// [`ImageError::Corrupt`] if the image or journal is internally
    /// inconsistent, [`ImageError::Invariant`] if the rebuilt state
    /// fails the invariant sweep.
    pub fn recover(
        image: &FtlImage,
        journal: &[JournalRecord],
        torn: Option<TornPage>,
    ) -> Result<(PageMapFtl, RecoveryReport), ImageError> {
        let mut ftl = PageMapFtl::from_image(image)?;
        let ppb = ftl.geometry.pages_per_block();
        let mut report = RecoveryReport::default();
        for record in journal {
            match *record {
                JournalRecord::Write {
                    lpn,
                    block,
                    page,
                    mode,
                } => {
                    let bidx = block.0 as usize;
                    if bidx >= ftl.blocks.len() || lpn >= ftl.logical_pages() {
                        return Err(ImageError::Corrupt("journal write out of range"));
                    }
                    if ftl.mapping[lpn as usize].is_some() {
                        return Err(ImageError::Corrupt("journal write over a live mapping"));
                    }
                    // A fresh block leaves the free pool the moment its
                    // first page programs.
                    ftl.free.retain(|&b| b != block);
                    let state = &mut ftl.blocks[bidx];
                    if state.retired {
                        return Err(ImageError::Corrupt("journal write into a retired block"));
                    }
                    if state.frontier == 0 {
                        state.mode = mode;
                    } else if state.mode != mode {
                        return Err(ImageError::Corrupt("journal write mode mismatch"));
                    }
                    if page != state.frontier || page >= state.usable_pages(ppb) {
                        return Err(ImageError::Corrupt("journal write off the frontier"));
                    }
                    state.slots[page as usize] = Some(lpn);
                    state.valid += 1;
                    state.frontier += 1;
                    ftl.mapping[lpn as usize] = Some(PhysicalPage::new(block, page));
                    ftl.frontier[mode_index(mode)] = Some(block);
                }
                JournalRecord::Invalidate { lpn } => ftl.invalidate(lpn),
                JournalRecord::Map { lpn, block, page } => {
                    let bidx = block.0 as usize;
                    if bidx >= ftl.blocks.len()
                        || lpn >= ftl.logical_pages()
                        || page >= ftl.blocks[bidx].frontier
                    {
                        return Err(ImageError::Corrupt("journal map out of range"));
                    }
                    if ftl.mapping[lpn as usize].is_some()
                        || ftl.blocks[bidx].slots[page as usize].is_some()
                    {
                        return Err(ImageError::Corrupt("journal map over live data"));
                    }
                    ftl.blocks[bidx].slots[page as usize] = Some(lpn);
                    ftl.blocks[bidx].valid += 1;
                    ftl.mapping[lpn as usize] = Some(PhysicalPage::new(block, page));
                }
                JournalRecord::Erase { block } => {
                    let bidx = block.0 as usize;
                    if bidx >= ftl.blocks.len() {
                        return Err(ImageError::Corrupt("journal erase out of range"));
                    }
                    if ftl.free.contains(&block) {
                        return Err(ImageError::Corrupt("journal erase of a free block"));
                    }
                    let state = &mut ftl.blocks[bidx];
                    if state.valid != 0 {
                        return Err(ImageError::Corrupt("journal erase of a live block"));
                    }
                    state.slots.iter_mut().for_each(|s| *s = None);
                    state.frontier = 0;
                    state.erases += 1;
                    state.mode = CellMode::Normal;
                    for f in &mut ftl.frontier {
                        if *f == Some(block) {
                            *f = None;
                        }
                    }
                    ftl.free.push_back(block);
                }
                JournalRecord::Retire { block } => {
                    let bidx = block.0 as usize;
                    if bidx >= ftl.blocks.len() {
                        return Err(ImageError::Corrupt("journal retire out of range"));
                    }
                    ftl.blocks[bidx].retired = true;
                    ftl.free.retain(|&b| b != block);
                    for f in &mut ftl.frontier {
                        if *f == Some(block) {
                            *f = None;
                        }
                    }
                }
                JournalRecord::Commit { .. } => {}
            }
            report.journal_replayed += 1;
        }
        if let Some(torn) = torn {
            let bidx = torn.block.0 as usize;
            if bidx < ftl.blocks.len() {
                let plausible = {
                    let state = &ftl.blocks[bidx];
                    !state.retired
                        && torn.page == state.frontier
                        && torn.page < state.usable_pages(ppb)
                };
                if plausible {
                    // The interrupted program reached the array but its
                    // mapping update never did: the slot reads back
                    // uncorrectable, so burn it — advance the frontier
                    // past the dead page without mapping anything to it.
                    ftl.free.retain(|&b| b != torn.block);
                    ftl.blocks[bidx].frontier += 1;
                    report.torn_pages_discarded += 1;
                }
            }
        }
        ftl.check_invariants().map_err(ImageError::Invariant)?;
        Ok((ftl, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ftl() -> PageMapFtl {
        // 16 blocks × 64 pages, 27% OP ⇒ 747 logical pages.
        PageMapFtl::new(DeviceGeometry::scaled(16).unwrap(), 2)
    }

    #[test]
    fn op_cost_expands_to_flash_ops() {
        use crate::pipeline::FlashOp;
        let cost = OpCost {
            flash_reads: 2,
            programs: 1,
            erases: 1,
            gc_runs: 1,
            gc_moved: 2,
        };
        let ops = cost.flash_ops(11);
        assert_eq!(
            ops,
            vec![
                FlashOp::GcRead { lpn: 11 },
                FlashOp::GcRead { lpn: 11 },
                FlashOp::Program { lpn: 11 },
                FlashOp::Erase { lpn: 11 },
            ]
        );
        assert!(OpCost::default().flash_ops(0).is_empty());
    }

    #[test]
    fn write_then_read_placement() {
        let mut ftl = small_ftl();
        let cost = ftl.write(5, CellMode::Normal).unwrap();
        assert_eq!(cost.programs, 1);
        assert_eq!(cost.erases, 0);
        let (phys, mode) = ftl.placement(5).unwrap();
        assert_eq!(mode, CellMode::Normal);
        assert!(ftl.geometry().contains(phys));
        assert_eq!(ftl.placement(6), None);
    }

    #[test]
    fn rewrite_invalidates_old_copy() {
        let mut ftl = small_ftl();
        ftl.write(5, CellMode::Normal).unwrap();
        let first = ftl.placement(5).unwrap().0;
        ftl.write(5, CellMode::Normal).unwrap();
        let second = ftl.placement(5).unwrap().0;
        assert_ne!(first, second);
        assert_eq!(ftl.total_valid_pages(), 1);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut ftl = small_ftl();
        let lpn = ftl.logical_pages();
        assert_eq!(
            ftl.write(lpn, CellMode::Normal),
            Err(FtlError::LpnOutOfRange { lpn })
        );
    }

    #[test]
    fn reduced_blocks_hold_three_quarters() {
        let mut ftl = small_ftl();
        let ppb = ftl.geometry().pages_per_block();
        // Fill one reduced block exactly: 48 pages.
        for lpn in 0..(ppb * 3 / 4) as u64 {
            ftl.write(lpn, CellMode::Reduced).unwrap();
        }
        assert_eq!(ftl.reduced_blocks(), 1);
        // The 49th write opens a second reduced block.
        ftl.write(100, CellMode::Reduced).unwrap();
        assert_eq!(ftl.reduced_blocks(), 2);
    }

    #[test]
    fn gc_reclaims_overwritten_space() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        // Write the whole logical space several times over; the device
        // must keep absorbing writes via GC.
        for round in 0..4 {
            for lpn in 0..logical {
                ftl.write(lpn, CellMode::Normal)
                    .unwrap_or_else(|e| panic!("round {round} lpn {lpn}: {e}"));
            }
        }
        assert_eq!(ftl.total_valid_pages(), logical);
        assert!(ftl.total_erases() > 0, "GC must have erased blocks");
        // Mapping stays consistent after heavy GC.
        for lpn in (0..logical).step_by(37) {
            let (phys, _) = ftl.placement(lpn).unwrap();
            assert!(ftl.geometry().contains(phys));
        }
    }

    #[test]
    fn gc_preserves_block_mode_of_relocated_data() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        // Put a quarter of the space in reduced pages, rest normal.
        for lpn in 0..logical {
            let mode = if lpn % 4 == 0 {
                CellMode::Reduced
            } else {
                CellMode::Normal
            };
            ftl.write(lpn, mode).unwrap();
        }
        // Churn normal pages to force GC.
        for _ in 0..3 {
            for lpn in (0..logical).filter(|l| l % 4 != 0) {
                ftl.write(lpn, CellMode::Normal).unwrap();
            }
        }
        // Reduced data must still live in reduced blocks.
        for lpn in (0..logical).filter(|l| l % 4 == 0) {
            let (_, mode) = ftl.placement(lpn).unwrap();
            assert_eq!(mode, CellMode::Reduced, "lpn {lpn} lost its mode");
        }
    }

    #[test]
    fn overfilled_reduced_device_errors() {
        // All-reduced operation drops usable capacity to 75% of raw; with
        // 27% OP the logical space no longer fits and the FTL must report
        // OutOfSpace rather than loop forever.
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        let mut failed = false;
        'outer: for _ in 0..3 {
            for lpn in 0..logical {
                if ftl.write(lpn, CellMode::Reduced).is_err() {
                    failed = true;
                    break 'outer;
                }
            }
        }
        assert!(
            failed,
            "the device cannot store 73% of raw in 75%-density pages plus frontier overheads"
        );
    }

    #[test]
    fn erase_counts_accumulate() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        for _ in 0..3 {
            for lpn in 0..logical {
                ftl.write(lpn, CellMode::Normal).unwrap();
            }
        }
        let total = ftl.total_erases();
        let max_block = (0..16).map(|b| ftl.block_erases(BlockId(b))).max().unwrap();
        assert!(
            total >= 16,
            "several blocks should have cycled, got {total}"
        );
        assert!(max_block >= 1);
    }

    #[test]
    fn invalidate_is_idempotent() {
        let mut ftl = small_ftl();
        ftl.write(9, CellMode::Normal).unwrap();
        ftl.invalidate(9);
        assert_eq!(ftl.placement(9), None);
        ftl.invalidate(9);
        assert_eq!(ftl.total_valid_pages(), 0);
    }

    #[test]
    fn wear_aware_gc_narrows_erase_spread() {
        let geometry = DeviceGeometry::scaled(16).unwrap();
        let run = |policy: GcPolicy| {
            let mut ftl = PageMapFtl::new(geometry, 4).with_gc_policy(policy);
            let logical = ftl.logical_pages();
            // Skewed rewrites: a hot tenth of the space is rewritten 9×
            // more often, concentrating invalidations.
            for round in 0..30u64 {
                for lpn in 0..logical / 10 {
                    ftl.write(lpn, CellMode::Normal).unwrap();
                }
                if round % 9 == 0 {
                    for lpn in logical / 10..logical {
                        ftl.write(lpn, CellMode::Normal).unwrap();
                    }
                }
            }
            ftl.erase_spread()
        };
        let (greedy_min, greedy_max) = run(GcPolicy::Greedy);
        let (wear_min, wear_max) = run(GcPolicy::WearAware);
        // Wear-aware must not widen the erase spread; with tie-breaking it
        // typically narrows it.
        assert!(
            wear_max - wear_min <= greedy_max - greedy_min,
            "wear-aware spread {}..{} vs greedy {}..{}",
            wear_min,
            wear_max,
            greedy_min,
            greedy_max
        );
    }

    #[test]
    fn retire_relocates_live_pages_and_shrinks_capacity() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        for lpn in 0..logical {
            ftl.write(lpn, CellMode::Normal).unwrap();
        }
        let (victim_page, _) = ftl.placement(0).unwrap();
        let victim = victim_page.block;
        let residents = ftl.block_lpns(victim);
        assert!(!residents.is_empty());
        let free_before = ftl.free_blocks();
        let cost = ftl.retire_block(victim).unwrap();
        // Every resident was read and re-programmed (emergency GC may add
        // more work on top); the dead block itself is never erased.
        assert!(cost.flash_reads as usize >= residents.len());
        assert!(cost.programs as usize >= residents.len());
        assert!(ftl.is_retired(victim));
        assert_eq!(ftl.retired_blocks(), 1);
        // All data survived, outside the dead block.
        assert_eq!(ftl.total_valid_pages(), logical);
        for lpn in residents {
            let (phys, _) = ftl.placement(lpn).unwrap();
            assert_ne!(phys.block, victim, "lpn {lpn} still in the dead block");
        }
        // The dead block never returns to the free pool.
        assert!(ftl.free_blocks() <= free_before);
        // Idempotent.
        assert_eq!(ftl.retire_block(victim).unwrap(), OpCost::default());
        assert_eq!(ftl.retired_blocks(), 1);
    }

    #[test]
    fn retired_blocks_are_never_reused_under_churn() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        for lpn in 0..logical {
            ftl.write(lpn, CellMode::Normal).unwrap();
        }
        let victim = ftl.placement(7).unwrap().0.block;
        ftl.retire_block(victim).unwrap();
        // Heavy rewrite churn with GC: the dead block must stay empty.
        for _ in 0..3 {
            for lpn in 0..logical {
                ftl.write(lpn, CellMode::Normal).unwrap();
            }
        }
        assert!(ftl.block_lpns(victim).is_empty());
        assert!(ftl.is_retired(victim));
        assert_eq!(ftl.total_valid_pages(), logical);
    }

    #[test]
    fn mass_retirement_exhausts_capacity() {
        // Retiring block after block must eventually surface OutOfSpace
        // instead of looping: capacity shrink is real.
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        for lpn in 0..logical {
            ftl.write(lpn, CellMode::Normal).unwrap();
        }
        let mut failed = false;
        for b in 0..ftl.geometry().blocks() {
            if ftl.retire_block(BlockId(b)).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "retiring every block must run out of space");
    }

    #[test]
    fn op_cost_accumulates() {
        let mut a = OpCost {
            flash_reads: 1,
            programs: 2,
            erases: 3,
            gc_runs: 4,
            gc_moved: 5,
        };
        a.add(OpCost {
            flash_reads: 10,
            programs: 20,
            erases: 30,
            gc_runs: 40,
            gc_moved: 50,
        });
        assert_eq!(a.flash_reads, 11);
        assert_eq!(a.programs, 22);
        assert_eq!(a.erases, 33);
        assert_eq!(a.gc_runs, 44);
        assert_eq!(a.gc_moved, 55);
    }

    /// A journaled FTL that has seen writes, overwrites, invalidates, GC
    /// and one retirement — the full record vocabulary.
    fn churned_journaled_ftl() -> (FtlImage, PageMapFtl) {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        for lpn in 0..logical {
            ftl.write(lpn, CellMode::Normal).unwrap();
        }
        ftl.enable_journal();
        let image = ftl.snapshot();
        // Overwrite churn forces GC (erase + relocation records).
        for i in 0..2_000u64 {
            let lpn = (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) % logical;
            ftl.write(lpn, CellMode::Normal).unwrap();
            if i % 7 == 0 {
                ftl.invalidate((lpn + 13) % logical);
            }
            if i % 251 == 0 {
                ftl.record_commit(i);
            }
        }
        let victim = ftl.placement(3).unwrap().0.block;
        ftl.retire_block(victim).unwrap();
        (image, ftl)
    }

    #[test]
    fn retiring_the_frontier_block_is_safe() {
        let mut ftl = small_ftl();
        for lpn in 0..200 {
            ftl.write(lpn, CellMode::Normal).unwrap();
        }
        // The last write landed on the current normal-mode frontier block.
        let frontier = ftl.placement(199).unwrap().0.block;
        ftl.retire_block(frontier).unwrap();
        ftl.check_invariants().unwrap();
        assert!(ftl.is_retired(frontier));
        // Every page survived the relocation and writes keep working.
        assert_eq!(ftl.total_valid_pages(), 200);
        ftl.write(200, CellMode::Normal).unwrap();
        assert_ne!(ftl.placement(199).unwrap().0.block, frontier);
        ftl.check_invariants().unwrap();
    }

    #[test]
    fn failed_retirement_rolls_back_cleanly() {
        // Exhaust capacity, then retire blocks until relocation cannot
        // find a destination: the failure must be typed OutOfSpace and
        // leave every mapping intact (no panic, no corruption).
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        for lpn in 0..logical {
            ftl.write(lpn, CellMode::Normal).unwrap();
        }
        let mut failure = None;
        for b in 0..ftl.geometry().blocks() {
            match ftl.retire_block(BlockId(b)) {
                Ok(_) => ftl.check_invariants().unwrap(),
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        assert_eq!(failure, Some(FtlError::OutOfSpace));
        ftl.check_invariants().unwrap();
        assert_eq!(
            ftl.total_valid_pages(),
            logical,
            "no page lost to the rollback"
        );
        for lpn in 0..logical {
            assert!(ftl.placement(lpn).is_some(), "lpn {lpn} unmapped");
        }
    }

    #[test]
    fn snapshot_round_trips_through_image() {
        let (_, ftl) = churned_journaled_ftl();
        let restored = PageMapFtl::from_image(&ftl.snapshot()).unwrap();
        restored.check_invariants().unwrap();
        assert_eq!(restored.digest(), ftl.digest());
    }

    #[test]
    fn full_journal_replay_reproduces_the_live_digest() {
        let (image, ftl) = churned_journaled_ftl();
        let journal = ftl.journal().unwrap();
        assert!(journal.len() > 2_000, "churn must journal heavily");
        let (recovered, report) = PageMapFtl::recover(&image, journal, None).unwrap();
        recovered.check_invariants().unwrap();
        assert_eq!(recovered.digest(), ftl.digest());
        assert_eq!(report.journal_replayed, journal.len() as u64);
        assert_eq!(report.torn_pages_discarded, 0);
    }

    #[test]
    fn every_journal_prefix_recovers_consistently() {
        let (image, ftl) = churned_journaled_ftl();
        let journal = ftl.journal().unwrap();
        for cut in (0..=journal.len()).step_by(97) {
            let (recovered, report) = PageMapFtl::recover(&image, &journal[..cut], None)
                .unwrap_or_else(|e| panic!("prefix {cut}: {e}"));
            recovered
                .check_invariants()
                .unwrap_or_else(|e| panic!("prefix {cut}: {e}"));
            assert_eq!(report.journal_replayed, cut as u64);
        }
    }

    #[test]
    fn torn_page_is_detected_and_discarded() {
        let mut ftl = small_ftl();
        for lpn in 0..50 {
            ftl.write(lpn, CellMode::Normal).unwrap();
        }
        ftl.enable_journal();
        let image = ftl.snapshot();
        ftl.write(50, CellMode::Normal).unwrap();
        let journal = ftl.journal().unwrap().to_vec();
        let &JournalRecord::Write { block, page, .. } = &journal[0] else {
            panic!("first record must be the page program");
        };
        // Power died inside that program: no journal records survive,
        // but the flash holds a half-programmed (uncorrectable) page.
        let torn = TornPage { block, page };
        let (recovered, report) = PageMapFtl::recover(&image, &[], Some(torn)).unwrap();
        recovered.check_invariants().unwrap();
        assert_eq!(report.torn_pages_discarded, 1);
        assert_eq!(report.journal_replayed, 0);
        // The interrupted write was never acknowledged: lpn 50 must not
        // be mapped, and the burned slot must never be programmed again.
        assert_eq!(recovered.placement(50), None);
        let mut recovered = recovered;
        recovered.write(50, CellMode::Normal).unwrap();
        let after = recovered.placement(50).unwrap().0;
        assert!(
            after.block != block || after.page != page,
            "recovered FTL reused the torn slot"
        );
        recovered.check_invariants().unwrap();
    }
}
