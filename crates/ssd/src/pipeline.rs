//! Staged flash commands for the pipelined timing model.
//!
//! Under [`TimingModel::Pipelined`](crate::config::TimingModel) every
//! flash operation is a short *chain* of stages, each occupying exactly
//! one hardware resource:
//!
//! * a host read that misses the buffer is `Sense(plane)` ×
//!   (1 + extra sensing levels) → `Transfer(channel)` →
//!   `Decode(controller slot)`;
//! * a program is `Transfer(channel)` → `Program(plane)`;
//! * a GC/migration read is `Sense` → `Transfer` (the relocated page is
//!   copied, not decoded by the host path);
//! * an erase is a single `Erase(plane)` stage;
//! * buffer hits and host write ingest are a lone `Transfer` (the page
//!   moves over the bus, the die is untouched).
//!
//! Stages of *different* chains overlap whenever their resources differ —
//! a die can sense the next read while the channel ships the previous
//! one and a decoder slot grinds on the one before that. Stage durations
//! come from the same [`ReadLatencyModel`] the single-queue model
//! charges, so the two models price identical work identically; only the
//! concurrency differs.

use flash_model::Micros;
use ldpc::ReadLatencyModel;
use serde::{Deserialize, Serialize};

/// The hardware resource class a stage occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StageKind {
    /// Array sensing: occupies the page's plane (die-level parallelism).
    Sense,
    /// Bus transfer: occupies the page's channel.
    Transfer,
    /// LDPC/ReduceCode decode: occupies one controller decoder slot.
    Decode,
    /// ISPP page program: occupies the page's plane.
    Program,
    /// Block erase: occupies the page's plane.
    Erase,
}

impl StageKind {
    /// All stage kinds, in pipeline order.
    pub const ALL: [StageKind; 5] = [
        StageKind::Sense,
        StageKind::Transfer,
        StageKind::Decode,
        StageKind::Program,
        StageKind::Erase,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            StageKind::Sense => "sense",
            StageKind::Transfer => "transfer",
            StageKind::Decode => "decode",
            StageKind::Program => "program",
            StageKind::Erase => "erase",
        }
    }
}

/// One stage of a flash operation: a duration on a resource, routed by
/// the logical page that triggered it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stage {
    /// Resource class this stage occupies.
    pub kind: StageKind,
    /// Time the resource is held.
    pub duration: Micros,
    /// Logical page used for channel/plane routing.
    pub lpn: u64,
}

/// A flash operation as a schedulable unit. Produced by the simulator's
/// logical layer (and by [`OpCost::flash_ops`](crate::ftl::OpCost::flash_ops)
/// for FTL background work), consumed by the event loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FlashOp {
    /// A host read served from flash: sense passes, transfer, decode.
    /// `decode` carries the full decoder-stage duration (base + measured
    /// or heuristic iterations + any wasted progressive-sensing decode
    /// passes + the ReduceCode cycle where applicable), precomputed by
    /// the logical layer so pricing matches the single-queue model.
    Read {
        /// Logical page (resource routing).
        lpn: u64,
        /// Extra soft sensing levels charged to sense and transfer.
        extra_levels: u32,
        /// Decoder-slot stage duration.
        decode: Micros,
    },
    /// Host-interface transfer only: a buffer-hit read or a host write
    /// landing in the write-back buffer.
    HostTransfer {
        /// Logical page (resource routing).
        lpn: u64,
    },
    /// An internal copy read (GC relocation, AccessEval migration):
    /// sense + transfer at zero extra levels, no host decode stage.
    GcRead {
        /// Logical page (resource routing).
        lpn: u64,
    },
    /// A page program: bus transfer of the data, then the ISPP loop.
    Program {
        /// Logical page (resource routing).
        lpn: u64,
    },
    /// A block erase.
    Erase {
        /// Logical page (resource routing).
        lpn: u64,
    },
    /// A transient die fault being cleared: the reset stalls the faulted
    /// page's plane (array access is blocked die-wide) for `duration`,
    /// priced by the fault model rather than the latency tables.
    DieReset {
        /// Logical page (resource routing).
        lpn: u64,
        /// Reset duration charged to the plane.
        duration: Micros,
    },
}

impl FlashOp {
    /// The logical page the op is routed by.
    pub fn lpn(&self) -> u64 {
        match *self {
            FlashOp::Read { lpn, .. }
            | FlashOp::HostTransfer { lpn }
            | FlashOp::GcRead { lpn }
            | FlashOp::Program { lpn }
            | FlashOp::Erase { lpn }
            | FlashOp::DieReset { lpn, .. } => lpn,
        }
    }

    /// Expands the op into its stage chain, priced by `latency`.
    pub fn stages(&self, latency: &ReadLatencyModel) -> Vec<Stage> {
        let t = &latency.timing;
        match *self {
            FlashOp::Read {
                lpn,
                extra_levels,
                decode,
            } => vec![
                Stage {
                    kind: StageKind::Sense,
                    duration: t.sense_latency(extra_levels),
                    lpn,
                },
                Stage {
                    kind: StageKind::Transfer,
                    duration: t.transfer_latency(extra_levels),
                    lpn,
                },
                Stage {
                    kind: StageKind::Decode,
                    duration: decode,
                    lpn,
                },
            ],
            FlashOp::HostTransfer { lpn } => vec![Stage {
                kind: StageKind::Transfer,
                duration: t.page_transfer,
                lpn,
            }],
            FlashOp::GcRead { lpn } => vec![
                Stage {
                    kind: StageKind::Sense,
                    duration: t.sense_latency(0),
                    lpn,
                },
                Stage {
                    kind: StageKind::Transfer,
                    duration: t.transfer_latency(0),
                    lpn,
                },
            ],
            FlashOp::Program { lpn } => vec![
                Stage {
                    kind: StageKind::Transfer,
                    duration: t.page_transfer,
                    lpn,
                },
                Stage {
                    kind: StageKind::Program,
                    duration: t.program,
                    lpn,
                },
            ],
            FlashOp::Erase { lpn } => vec![Stage {
                kind: StageKind::Erase,
                duration: t.erase,
                lpn,
            }],
            // A die reset occupies the plane like a (long) sense would:
            // the whole die is unavailable for array operations.
            FlashOp::DieReset { lpn, duration } => vec![Stage {
                kind: StageKind::Sense,
                duration,
                lpn,
            }],
        }
    }
}

/// Expands a slice of ops into one serial stage chain.
pub fn expand_ops(ops: &[FlashOp], latency: &ReadLatencyModel) -> Vec<Stage> {
    let mut stages = Vec::with_capacity(ops.len() * 3);
    for op in ops {
        stages.extend(op.stages(latency));
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ReadLatencyModel {
        ReadLatencyModel::paper_mlc()
    }

    #[test]
    fn read_chain_prices_like_the_lumped_model() {
        // Stage durations of a read must sum to exactly what the lumped
        // single-queue expression charges for the same work.
        let m = model();
        for levels in 0..=6u32 {
            for iters in [1u32, 5, 30] {
                let decode = m.decode_latency(iters);
                let op = FlashOp::Read {
                    lpn: 17,
                    extra_levels: levels,
                    decode,
                };
                let total: Micros = op.stages(&m).iter().map(|s| s.duration).sum();
                assert_eq!(total, m.read_latency(levels, iters));
            }
        }
    }

    #[test]
    fn read_chain_shape() {
        let m = model();
        let op = FlashOp::Read {
            lpn: 3,
            extra_levels: 2,
            decode: Micros(10.0),
        };
        let stages = op.stages(&m);
        let kinds: Vec<StageKind> = stages.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            [StageKind::Sense, StageKind::Transfer, StageKind::Decode]
        );
        assert_eq!(stages[0].duration, Micros(270.0)); // 3 passes × 90
        assert_eq!(stages[1].duration, Micros(120.0)); // 3 passes × 40
        assert!(stages.iter().all(|s| s.lpn == 3));
    }

    #[test]
    fn program_and_gc_chains() {
        let m = model();
        let program = FlashOp::Program { lpn: 9 }.stages(&m);
        assert_eq!(program.len(), 2);
        assert_eq!(program[0].kind, StageKind::Transfer);
        assert_eq!(program[1].kind, StageKind::Program);
        assert_eq!(program[1].duration, Micros(1000.0));

        let gc = FlashOp::GcRead { lpn: 9 }.stages(&m);
        assert_eq!(gc.len(), 2);
        // A GC copy prices exactly like the lumped model's
        // read_transfer_latency(0) charge.
        let total: Micros = gc.iter().map(|s| s.duration).sum();
        assert_eq!(total, m.timing.read_transfer_latency(0));

        let erase = FlashOp::Erase { lpn: 9 }.stages(&m);
        assert_eq!(erase.len(), 1);
        assert_eq!(erase[0].duration, Micros(3000.0));
    }

    #[test]
    fn die_reset_stalls_the_plane() {
        let m = model();
        let op = FlashOp::DieReset {
            lpn: 5,
            duration: Micros(2000.0),
        };
        assert_eq!(op.lpn(), 5);
        let stages = op.stages(&m);
        assert_eq!(stages.len(), 1);
        assert_eq!(stages[0].kind, StageKind::Sense);
        assert_eq!(stages[0].duration, Micros(2000.0));
    }

    #[test]
    fn expand_concatenates_in_order() {
        let m = model();
        let ops = [
            FlashOp::GcRead { lpn: 1 },
            FlashOp::Program { lpn: 2 },
            FlashOp::Erase { lpn: 3 },
        ];
        let stages = expand_ops(&ops, &m);
        assert_eq!(stages.len(), 5);
        assert_eq!(stages[0].lpn, 1);
        assert_eq!(stages[2].lpn, 2);
        assert_eq!(stages[4].kind, StageKind::Erase);
    }

    #[test]
    fn lpn_accessor() {
        assert_eq!(FlashOp::HostTransfer { lpn: 42 }.lpn(), 42);
        assert_eq!(
            FlashOp::Read {
                lpn: 7,
                extra_levels: 0,
                decode: Micros::ZERO
            }
            .lpn(),
            7
        );
    }

    #[test]
    fn stage_labels() {
        assert_eq!(StageKind::ALL.len(), 5);
        assert_eq!(StageKind::Sense.label(), "sense");
        assert_eq!(StageKind::Decode.label(), "decode");
    }
}
