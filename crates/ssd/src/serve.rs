//! Per-tenant QoS policy for open-loop serving.
//!
//! The scheduler layer in [`crate::sim`] models an NVMe-style submission/
//! completion queue pair per tenant: each tenant may hold at most
//! `queue_depth` requests in flight; an arrival past that cap is either
//! **dropped** (rejected, counted, never served) or **deferred** (held in
//! the submission queue until a slot frees, with the wait charged to its
//! response time) per [`OverloadPolicy`].
//!
//! Admission decisions are made against the *lumped* single-queue
//! completion model regardless of the configured timing backend, so the
//! set of admitted/dropped/deferred requests — and therefore every logical
//! operation counter — is bit-identical between [`TimingModel::SingleQueue`]
//! and [`TimingModel::Pipelined`]. Only the measured response times differ,
//! which is the same contract the two backends already honour for replay.
//!
//! [`TimingModel::SingleQueue`]: crate::config::TimingModel::SingleQueue
//! [`TimingModel::Pipelined`]: crate::config::TimingModel::Pipelined

use crate::sim::SimError;

/// What to do with an arrival that finds its tenant's queue full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Reject the request; it is counted as dropped and never served.
    #[default]
    Drop,
    /// Hold the request until the oldest in-flight one completes; the
    /// wait counts toward its response time (and its SLO).
    Defer,
}

impl OverloadPolicy {
    /// Human-readable label (`"drop"` / `"defer"`).
    pub fn label(&self) -> &'static str {
        match self {
            OverloadPolicy::Drop => "drop",
            OverloadPolicy::Defer => "defer",
        }
    }
}

/// One tenant's QoS contract: queue-depth cap, overload policy and
/// latency SLO target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantQos {
    /// Maximum in-flight requests; 0 means unlimited (no backpressure).
    pub queue_depth: u32,
    /// What happens to arrivals beyond the cap.
    pub policy: OverloadPolicy,
    /// Response-time SLO target in µs; 0 disables violation counting.
    pub slo_us: f64,
}

impl Default for TenantQos {
    fn default() -> TenantQos {
        TenantQos {
            queue_depth: 0,
            policy: OverloadPolicy::Drop,
            slo_us: 0.0,
        }
    }
}

impl TenantQos {
    /// Sets the queue-depth cap (0 = unlimited).
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: u32) -> TenantQos {
        self.queue_depth = queue_depth;
        self
    }

    /// Sets the overload policy.
    #[must_use]
    pub fn with_policy(mut self, policy: OverloadPolicy) -> TenantQos {
        self.policy = policy;
        self
    }

    /// Sets the SLO target in µs (0 = none).
    #[must_use]
    pub fn with_slo_us(mut self, slo_us: f64) -> TenantQos {
        self.slo_us = slo_us;
        self
    }
}

/// Scheduler options for one serving run.
///
/// [`replay()`](Self::replay) — the default for [`SsdSimulator::run`] — has
/// no tenants: no admission control, no tenant accounting, and therefore a
/// replay bit-identical to the pre-serving simulator.
///
/// [`SsdSimulator::run`]: crate::sim::SsdSimulator::run
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServeOptions {
    /// Per-tenant QoS, indexed by tenant. Empty disables all tenant
    /// machinery (replay mode).
    pub tenants: Vec<TenantQos>,
}

impl ServeOptions {
    /// Replay mode: no tenants, no admission control, no per-tenant stats.
    pub fn replay() -> ServeOptions {
        ServeOptions::default()
    }

    /// The same QoS contract for each of `n` tenants.
    pub fn uniform(n: u32, qos: TenantQos) -> ServeOptions {
        ServeOptions {
            tenants: vec![qos; n as usize],
        }
    }

    /// `true` when per-tenant accounting and admission control are on.
    pub fn tenanted(&self) -> bool {
        !self.tenants.is_empty()
    }
}

/// Serving failures: either the underlying simulation failed, or the
/// options do not match the request source.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The simulation itself failed (FTL space, footprint).
    Sim(SimError),
    /// `ServeOptions::tenants` does not cover every tenant the source
    /// emits.
    QosMismatch {
        /// Tenants the request source multiplexes.
        tenants: u32,
        /// QoS entries provided.
        qos: usize,
    },
}

impl From<SimError> for ServeError {
    fn from(e: SimError) -> ServeError {
        ServeError::Sim(e)
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Sim(e) => write!(f, "simulation: {e}"),
            ServeError::QosMismatch { tenants, qos } => write!(
                f,
                "source emits {tenants} tenants but options define {qos} QoS entries"
            ),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Sim(e) => Some(e),
            ServeError::QosMismatch { .. } => None,
        }
    }
}

/// Admission verdict for one arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Admit {
    /// A queue slot is free: submit at arrival time.
    Now,
    /// Queue full, `Defer` policy: submit when the oldest in-flight
    /// request completes (the contained lumped completion time, µs).
    DeferredUntil(f64),
    /// Queue full, `Drop` policy: reject.
    Drop,
}

/// Per-tenant in-flight tracking against the lumped completion model.
///
/// Completions are *predicted* single-queue completion times (`start +
/// fg`), never pipelined ones — that keeps the admitted set a function of
/// request order alone, identical across timing backends.
#[derive(Debug)]
pub(crate) struct Backpressure {
    lanes: Vec<Lane>,
}

#[derive(Debug)]
struct Lane {
    queue_depth: usize,
    policy: OverloadPolicy,
    /// Lumped completion times of in-flight requests (µs, unsorted).
    outstanding: Vec<f64>,
}

impl Backpressure {
    pub(crate) fn new(options: &ServeOptions) -> Backpressure {
        Backpressure {
            lanes: options
                .tenants
                .iter()
                .map(|qos| Lane {
                    queue_depth: qos.queue_depth as usize,
                    policy: qos.policy,
                    outstanding: Vec::with_capacity(qos.queue_depth as usize),
                })
                .collect(),
        }
    }

    /// Decides what happens to a `tenant` arrival at `arrival_us`.
    /// Completions at or before the arrival free their slots first.
    pub(crate) fn admit(&mut self, tenant: u32, arrival_us: f64) -> Admit {
        let Some(lane) = self.lanes.get_mut(tenant as usize) else {
            return Admit::Now;
        };
        if lane.queue_depth == 0 {
            return Admit::Now;
        }
        lane.outstanding.retain(|&done| done > arrival_us);
        if lane.outstanding.len() < lane.queue_depth {
            return Admit::Now;
        }
        match lane.policy {
            OverloadPolicy::Drop => Admit::Drop,
            OverloadPolicy::Defer => {
                // The request enters when the oldest in-flight one
                // completes; pop that slot now so it is not double-freed.
                let (idx, _) = lane
                    .outstanding
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .expect("queue_depth > 0 and lane is full");
                let done = lane.outstanding.swap_remove(idx);
                Admit::DeferredUntil(done)
            }
        }
    }

    /// Registers an admitted request's lumped completion time.
    pub(crate) fn commit(&mut self, tenant: u32, completion_us: f64) {
        if let Some(lane) = self.lanes.get_mut(tenant as usize) {
            if lane.queue_depth > 0 {
                lane.outstanding.push(completion_us);
            }
        }
    }

    /// In-flight requests of `tenant` at `t_us` under the lumped model:
    /// committed completions strictly after `t_us`. Zero for unknown
    /// tenants and unlimited-depth lanes (which track no completions).
    pub(crate) fn inflight_at(&self, tenant: u32, t_us: f64) -> u64 {
        self.lanes.get(tenant as usize).map_or(0, |lane| {
            lane.outstanding.iter().filter(|&&done| done > t_us).count() as u64
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pressured(depth: u32, policy: OverloadPolicy) -> Backpressure {
        Backpressure::new(&ServeOptions::uniform(
            1,
            TenantQos::default()
                .with_queue_depth(depth)
                .with_policy(policy),
        ))
    }

    #[test]
    fn unlimited_depth_always_admits() {
        let mut bp = pressured(0, OverloadPolicy::Drop);
        for i in 0..100 {
            assert_eq!(bp.admit(0, i as f64), Admit::Now);
            bp.commit(0, i as f64 + 1e9);
        }
    }

    #[test]
    fn drop_policy_rejects_when_full() {
        let mut bp = pressured(2, OverloadPolicy::Drop);
        assert_eq!(bp.admit(0, 0.0), Admit::Now);
        bp.commit(0, 100.0);
        assert_eq!(bp.admit(0, 1.0), Admit::Now);
        bp.commit(0, 200.0);
        assert_eq!(bp.admit(0, 2.0), Admit::Drop);
        // After the first completion one slot frees.
        assert_eq!(bp.admit(0, 150.0), Admit::Now);
    }

    #[test]
    fn defer_policy_waits_for_oldest_completion() {
        let mut bp = pressured(1, OverloadPolicy::Defer);
        assert_eq!(bp.admit(0, 0.0), Admit::Now);
        bp.commit(0, 500.0);
        assert_eq!(bp.admit(0, 10.0), Admit::DeferredUntil(500.0));
        bp.commit(0, 900.0);
        // The deferred request took the freed slot; the next one waits on
        // its completion.
        assert_eq!(bp.admit(0, 20.0), Admit::DeferredUntil(900.0));
    }

    #[test]
    fn completion_at_arrival_instant_frees_the_slot() {
        // `done > arrival` drops a completion at exactly the arrival
        // time from the in-flight set: the boundary is deterministic
        // either way, but it must be pinned.
        let mut bp = pressured(1, OverloadPolicy::Drop);
        assert_eq!(bp.admit(0, 0.0), Admit::Now);
        bp.commit(0, 100.0);
        assert_eq!(bp.admit(0, 99.0), Admit::Drop);
        assert_eq!(bp.admit(0, 100.0), Admit::Now);
    }

    #[test]
    fn inflight_counts_open_lumped_completions() {
        let mut bp = pressured(4, OverloadPolicy::Drop);
        bp.commit(0, 100.0);
        bp.commit(0, 200.0);
        bp.commit(0, 300.0);
        assert_eq!(bp.inflight_at(0, 50.0), 3);
        // Strictly-after boundary matches `admit`'s `done > arrival`.
        assert_eq!(bp.inflight_at(0, 100.0), 2);
        assert_eq!(bp.inflight_at(0, 300.0), 0);
        assert_eq!(bp.inflight_at(9, 50.0), 0);
        // Unlimited-depth lanes track no completions.
        let mut bp = pressured(0, OverloadPolicy::Drop);
        bp.commit(0, 100.0);
        assert_eq!(bp.inflight_at(0, 50.0), 0);
    }

    #[test]
    fn unknown_tenant_admits() {
        let mut bp = pressured(1, OverloadPolicy::Drop);
        assert_eq!(bp.admit(7, 0.0), Admit::Now);
    }

    #[test]
    fn serve_error_display_and_source() {
        use std::error::Error;
        let e = ServeError::QosMismatch { tenants: 4, qos: 2 };
        assert!(e.to_string().contains("4 tenants"));
        assert!(e.source().is_none());
        let e = ServeError::from(SimError::FootprintTooLarge {
            footprint: 10,
            capacity: 5,
        });
        assert!(e.to_string().starts_with("simulation:"));
        assert!(e.source().is_some());
    }

    #[test]
    fn options_builders() {
        assert!(!ServeOptions::replay().tenanted());
        let opts = ServeOptions::uniform(
            3,
            TenantQos::default()
                .with_queue_depth(8)
                .with_policy(OverloadPolicy::Defer)
                .with_slo_us(900.0),
        );
        assert!(opts.tenanted());
        assert_eq!(opts.tenants.len(), 3);
        assert_eq!(opts.tenants[2].queue_depth, 8);
        assert_eq!(opts.tenants[2].policy.label(), "defer");
        assert_eq!(opts.tenants[2].slo_us, 900.0);
    }
}
