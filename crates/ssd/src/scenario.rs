//! Composable hostile-environment scenarios and the named preset registry.
//!
//! The paper evaluates FlexLevel at one design point: MLC cells under a
//! spatially uniform i.i.d. raw-BER field. Real deployments are messier —
//! radiation events corrupt whole regions of a plane at once, a thermal
//! gradient across the package tilts BER by channel, and hot logical
//! pages accumulate read disturb between rewrites. This module prices
//! those environments without touching the golden path:
//!
//! * [`ClusterFaultConfig`] — spatially correlated error clusters
//!   (SEU/radiation style). Each cluster occupies a contiguous row window
//!   of *one* plane; membership is a pure function of the LPN's plane
//!   routing (the same channel-major mapping as
//!   [`crate::device::ResourcePool::plane_for`]) and the scenario seed,
//!   so it defeats the uniform-BER assumption while staying bit-identical
//!   across thread counts and timing backends.
//! * [`ThermalGradientConfig`] — a linear BER multiplier across channels:
//!   channel 0 is coolest (×1), the last channel hottest.
//! * [`ReadDisturbConfig`] — an additive BER term growing with the reads
//!   a page has absorbed since it was last programmed or refreshed; the
//!   patrol scrubber observes the disturbed BER and its refresh resets
//!   the counter, which is what makes the scrub interaction testable.
//!
//! All placement draws come from the same SplitMix64 keying as
//! [`crate::faults`], derived only from the scenario seed — never from
//! access order — so every component is deterministic by construction.
//! A default (empty) [`EnvironmentConfig`] adds no state and no draws:
//! golden counters never move.
//!
//! [`ScenarioSpec`] names ready-made combinations (`baseline`,
//! `seu-burst`, `thermal-tilt`, …) runnable via
//! `flexlevel-sim --scenario <name>` and pinned cell-by-cell in
//! `tests/scenario_matrix.rs`.

use std::collections::HashMap;

use flash_model::CellTech;
use serde::{Deserialize, Serialize};

use crate::config::SsdConfig;
use crate::faults::{splitmix64, FaultConfig};

/// Spatially correlated error clusters (SEU/radiation style).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterFaultConfig {
    /// Seed of the cluster-placement draws (independent of the fault and
    /// data-age seeds).
    pub seed: u64,
    /// Number of cluster events struck into the device.
    pub events: u32,
    /// Rows of a plane one cluster spans (a row is one page per plane in
    /// the channel-major interleaving).
    pub span_rows: u64,
    /// Multiplier on the raw BER of pages inside a cluster.
    pub ber_factor: f64,
    /// Multiplier on the frame-error rate of reads inside a cluster
    /// (applies only when fault injection is enabled).
    pub fer_factor: f64,
}

impl Default for ClusterFaultConfig {
    fn default() -> ClusterFaultConfig {
        ClusterFaultConfig {
            seed: 0x5EB_0057,
            events: 4,
            span_rows: 64,
            ber_factor: 4.0,
            fer_factor: 25.0,
        }
    }
}

/// Temperature-gradient BER modulation across channels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThermalGradientConfig {
    /// BER multiplier at the hottest (last) channel; the gradient
    /// interpolates linearly down to ×1.0 at channel 0. With a single
    /// channel the whole device runs at the hottest factor.
    pub hottest_factor: f64,
}

impl Default for ThermalGradientConfig {
    fn default() -> ThermalGradientConfig {
        ThermalGradientConfig {
            hottest_factor: 3.0,
        }
    }
}

/// Read-disturb accumulation on logical pages.
///
/// The per-read increment is deliberately accelerated relative to real
/// parts (like [`FaultConfig::scale`]) so short regression traces make
/// the effect visible.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadDisturbConfig {
    /// Additive raw-BER increment per flash read since the page was last
    /// programmed or refreshed.
    pub ber_per_read: f64,
    /// Cap on the accumulated additive term.
    pub cap: f64,
}

impl Default for ReadDisturbConfig {
    fn default() -> ReadDisturbConfig {
        ReadDisturbConfig {
            ber_per_read: 1e-3,
            cap: 3e-2,
        }
    }
}

/// Composable scenario components; all default **off** (an empty
/// environment injects nothing and keeps every golden counter).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EnvironmentConfig {
    /// Spatially correlated error clusters.
    pub clusters: Option<ClusterFaultConfig>,
    /// Temperature gradient across channels.
    pub thermal: Option<ThermalGradientConfig>,
    /// Read-disturb accumulation.
    pub read_disturb: Option<ReadDisturbConfig>,
}

impl EnvironmentConfig {
    /// `true` when any component is active.
    pub fn is_enabled(&self) -> bool {
        self.clusters.is_some() || self.thermal.is_some() || self.read_disturb.is_some()
    }

    /// Adds a cluster-fault component.
    #[must_use]
    pub fn with_clusters(mut self, clusters: ClusterFaultConfig) -> EnvironmentConfig {
        self.clusters = Some(clusters);
        self
    }

    /// Adds a thermal-gradient component.
    #[must_use]
    pub fn with_thermal(mut self, thermal: ThermalGradientConfig) -> EnvironmentConfig {
        self.thermal = Some(thermal);
        self
    }

    /// Adds a read-disturb component.
    #[must_use]
    pub fn with_read_disturb(mut self, disturb: ReadDisturbConfig) -> EnvironmentConfig {
        self.read_disturb = Some(disturb);
        self
    }
}

/// One placed cluster: a contiguous row window of a single plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cluster {
    /// The plane the event struck (channel-major index).
    pub plane: u64,
    /// First affected row within the plane.
    pub row_start: u64,
    /// Rows affected.
    pub span_rows: u64,
}

impl Cluster {
    /// `true` if the (plane, row) coordinate lies inside this cluster.
    #[inline]
    pub fn contains(&self, plane: u64, row: u64) -> bool {
        self.plane == plane && row >= self.row_start && row < self.row_start + self.span_rows
    }
}

/// A keyed placement draw: pure function of `(seed, event, salt)`, so
/// cluster geometry never depends on access order, threads or timing.
fn placement_draw(seed: u64, event: u64, salt: u64) -> u64 {
    let mut state =
        seed ^ event.wrapping_mul(0x9FB2_1C65_1E98_DF25) ^ salt.wrapping_mul(0xA24B_AED4_963E_E407);
    let _ = splitmix64(&mut state);
    splitmix64(&mut state)
}

/// Runtime state of the scenario environment: precomputed cluster
/// geometry plus per-LPN read-disturb counters. Built only when the
/// configuration enables at least one component.
#[derive(Debug)]
pub struct EnvironmentState {
    config: EnvironmentConfig,
    channels: u64,
    plane_stride: u64,
    clusters: Vec<Cluster>,
    /// Flash reads absorbed per LPN since its last program/refresh
    /// (driven by logical access order only — thread/timing invariant).
    disturb: HashMap<u64, u64>,
}

impl EnvironmentState {
    /// Builds the environment for `config`, or `None` when every
    /// component is off (the golden path allocates nothing).
    pub fn new(config: &SsdConfig) -> Option<EnvironmentState> {
        if !config.environment.is_enabled() {
            return None;
        }
        let channels = config.channels.max(1) as u64;
        let dies = config.dies_per_channel.max(1) as u64;
        let planes = config.planes_per_die.max(1) as u64;
        let plane_count = channels * dies * planes;
        let plane_stride = plane_count;
        let rows = config.geometry.logical_pages().div_ceil(plane_count).max(1);
        let clusters = match &config.environment.clusters {
            Some(c) => (0..c.events as u64)
                .map(|event| {
                    let span = c.span_rows.clamp(1, rows);
                    let start_ceiling = rows - span + 1;
                    Cluster {
                        plane: placement_draw(c.seed, event, 0x11) % plane_count,
                        row_start: placement_draw(c.seed, event, 0x22) % start_ceiling,
                        span_rows: span,
                    }
                })
                .collect(),
            None => Vec::new(),
        };
        Some(EnvironmentState {
            config: config.environment.clone(),
            channels,
            plane_stride,
            clusters,
            disturb: HashMap::new(),
        })
    }

    /// The placed clusters (diagnostics and tests).
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// The plane `lpn` routes to — the same channel-major mapping as
    /// [`crate::device::ResourcePool::plane_for`], a pure function of the
    /// LPN and the geometry knobs.
    #[inline]
    pub fn plane_of(&self, lpn: u64) -> u64 {
        lpn % self.plane_stride
    }

    /// The row of `lpn` within its plane.
    #[inline]
    pub fn row_of(&self, lpn: u64) -> u64 {
        lpn / self.plane_stride
    }

    /// `true` when `lpn` lies inside any placed cluster.
    pub fn in_cluster(&self, lpn: u64) -> bool {
        let (plane, row) = (self.plane_of(lpn), self.row_of(lpn));
        self.clusters.iter().any(|c| c.contains(plane, row))
    }

    /// Environment-adjusted raw BER of a read of `lpn`: the thermal
    /// multiplier for its channel, the cluster multiplier if it sits in a
    /// struck region, and the accumulated read-disturb term.
    pub fn adjust_ber(&self, lpn: u64, ber: f64) -> f64 {
        let mut ber = ber;
        if let Some(t) = &self.config.thermal {
            let frac = if self.channels > 1 {
                (lpn % self.channels) as f64 / (self.channels - 1) as f64
            } else {
                1.0
            };
            ber *= 1.0 + (t.hottest_factor - 1.0) * frac;
        }
        if let Some(c) = &self.config.clusters {
            if self.in_cluster(lpn) {
                ber *= c.ber_factor;
            }
        }
        if let Some(d) = &self.config.read_disturb {
            let reads = self.disturb.get(&lpn).copied().unwrap_or(0);
            ber += (d.ber_per_read * reads as f64).min(d.cap);
        }
        ber.clamp(0.0, 0.5)
    }

    /// Frame-error-rate multiplier of a read of `lpn` (clusters only).
    pub fn fer_factor(&self, lpn: u64) -> f64 {
        match &self.config.clusters {
            Some(c) if self.in_cluster(lpn) => c.fer_factor.max(0.0),
            _ => 1.0,
        }
    }

    /// Records one flash read of `lpn` (read-disturb accumulation).
    pub fn record_read(&mut self, lpn: u64) {
        if self.config.read_disturb.is_some() {
            *self.disturb.entry(lpn).or_insert(0) += 1;
        }
    }

    /// Records a program or refresh of `lpn`: the rewritten cells start
    /// clean, so the disturb counter resets.
    pub fn record_program(&mut self, lpn: u64) {
        if self.config.read_disturb.is_some() {
            self.disturb.remove(&lpn);
        }
    }

    /// Clears accumulated per-page state (measured-run reset, mirroring
    /// [`crate::faults::FaultState::reset`]).
    pub fn reset(&mut self) {
        self.disturb.clear();
    }

    /// Checkpoint view of the read-disturb accumulators as `(lpn, reads)`
    /// pairs sorted by LPN. The cluster map and thermal tilt are pure
    /// functions of the configuration and need no checkpointing.
    pub fn disturb_snapshot(&self) -> Vec<(u64, u64)> {
        let mut out: Vec<(u64, u64)> = self
            .disturb
            .iter()
            .map(|(&lpn, &reads)| (lpn, reads))
            .collect();
        out.sort_unstable_by_key(|&(lpn, _)| lpn);
        out
    }

    /// Restores the read-disturb accumulators captured by
    /// [`disturb_snapshot`](Self::disturb_snapshot).
    pub fn restore_disturb(&mut self, disturb: &[(u64, u64)]) {
        self.disturb = disturb.iter().copied().collect();
    }
}

/// A named, self-contained scenario: cell technology, fault model and
/// environment components, applied on top of any base configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Registry name (`--scenario <name>`).
    pub name: &'static str,
    /// One-line description (`--list-scenarios`).
    pub summary: &'static str,
    /// Cell technology the device runs.
    pub cell: CellTech,
    /// Channel-count override (thermal scenarios need a gradient to tilt).
    pub channels: Option<u32>,
    /// Starting-wear override.
    pub base_pe: Option<u32>,
    /// Fault-injection override (`None` keeps the base config's model).
    pub faults: Option<FaultConfig>,
    /// Environment components.
    pub environment: EnvironmentConfig,
}

impl ScenarioSpec {
    /// A spec that changes nothing: the paper's MLC design point.
    fn baseline() -> ScenarioSpec {
        ScenarioSpec {
            name: "baseline",
            summary: "the paper's MLC design point; leaves every golden counter untouched",
            cell: CellTech::Mlc,
            channels: None,
            base_pe: None,
            faults: None,
            environment: EnvironmentConfig::default(),
        }
    }

    /// Every named scenario, `baseline` first.
    pub fn registry() -> Vec<ScenarioSpec> {
        let stress = |scale: f64| FaultConfig {
            escalate_fer_factor: 0.7,
            final_fer_factor: 0.5,
            ..FaultConfig::enabled().with_scale(scale)
        };
        vec![
            ScenarioSpec::baseline(),
            ScenarioSpec {
                name: "seu-burst",
                summary: "radiation clusters: correlated error bursts co-located within planes",
                faults: Some(stress(4.0)),
                environment: EnvironmentConfig::default()
                    .with_clusters(ClusterFaultConfig::default()),
                ..ScenarioSpec::baseline()
            },
            ScenarioSpec {
                name: "thermal-tilt",
                summary: "linear temperature gradient across 4 channels (hottest 3x BER)",
                channels: Some(4),
                faults: Some(stress(4.0)),
                environment: EnvironmentConfig::default()
                    .with_thermal(ThermalGradientConfig::default()),
                ..ScenarioSpec::baseline()
            },
            ScenarioSpec {
                name: "read-disturb-hot",
                summary: "accelerated read disturb on hot LPNs, patrol scrub racing it",
                faults: Some(stress(4.0)),
                environment: EnvironmentConfig::default()
                    .with_read_disturb(ReadDisturbConfig::default()),
                ..ScenarioSpec::baseline()
            },
            ScenarioSpec {
                name: "tlc",
                summary: "mid-life TLC: 8 levels in the MLC window, fault-free",
                cell: CellTech::Tlc,
                base_pe: Some(3000),
                ..ScenarioSpec::baseline()
            },
            ScenarioSpec {
                name: "aged-tlc",
                summary: "worn TLC under fault injection with patrol scrub",
                cell: CellTech::Tlc,
                base_pe: Some(4500),
                faults: Some(stress(1.0)),
                ..ScenarioSpec::baseline()
            },
            ScenarioSpec {
                name: "hostile",
                summary: "everything at once: clusters + thermal tilt + read disturb",
                channels: Some(4),
                faults: Some(stress(2.0)),
                environment: EnvironmentConfig::default()
                    .with_clusters(ClusterFaultConfig::default())
                    .with_thermal(ThermalGradientConfig::default())
                    .with_read_disturb(ReadDisturbConfig::default()),
                ..ScenarioSpec::baseline()
            },
        ]
    }

    /// Registry names in registry order.
    pub fn names() -> Vec<&'static str> {
        ScenarioSpec::registry().iter().map(|s| s.name).collect()
    }

    /// Looks a scenario up by name.
    pub fn find(name: &str) -> Option<ScenarioSpec> {
        ScenarioSpec::registry()
            .into_iter()
            .find(|s| s.name == name)
    }

    /// Applies the scenario on top of `config`. `baseline` is the
    /// identity; other presets override only what they name.
    #[must_use]
    pub fn apply(&self, mut config: SsdConfig) -> SsdConfig {
        config.cell = self.cell;
        config.environment = self.environment.clone();
        if let Some(channels) = self.channels {
            config.channels = channels.max(1);
        }
        if let Some(pe) = self.base_pe {
            config.base_pe_cycles = pe;
        }
        if let Some(faults) = &self.faults {
            config.faults = faults.clone();
        }
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Scheme;

    fn base() -> SsdConfig {
        SsdConfig::scaled(Scheme::FlexLevel, 64)
    }

    #[test]
    fn empty_environment_is_off() {
        assert!(!EnvironmentConfig::default().is_enabled());
        assert!(EnvironmentState::new(&base()).is_none());
    }

    #[test]
    fn baseline_is_identity() {
        let config = base().with_base_pe(6000).with_seed(7);
        let applied = ScenarioSpec::find("baseline")
            .unwrap()
            .apply(config.clone());
        assert_eq!(applied, config);
    }

    #[test]
    fn registry_is_wellformed() {
        let names = ScenarioSpec::names();
        assert!(names.len() >= 5, "at least 5 presets: {names:?}");
        assert_eq!(names[0], "baseline");
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "names are unique");
        for name in [
            "seu-burst",
            "thermal-tilt",
            "read-disturb-hot",
            "tlc",
            "aged-tlc",
        ] {
            assert!(ScenarioSpec::find(name).is_some(), "{name} registered");
        }
        assert!(ScenarioSpec::find("no-such-scenario").is_none());
    }

    #[test]
    fn clusters_are_colocated_and_deterministic() {
        let config = base().with_environment(
            EnvironmentConfig::default().with_clusters(ClusterFaultConfig::default()),
        );
        let a = EnvironmentState::new(&config).unwrap();
        let b = EnvironmentState::new(&config).unwrap();
        assert_eq!(a.clusters(), b.clusters());
        assert_eq!(a.clusters().len(), 4);
        let rows = config.geometry.logical_pages().div_ceil(4);
        for c in a.clusters() {
            assert!(c.plane < 4, "plane within 1 channel x 4 dies x 1 plane");
            assert!(c.row_start + c.span_rows <= rows);
        }
        // Membership is consistent with the plane routing.
        for lpn in 0..256u64 {
            if a.in_cluster(lpn) {
                let plane = a.plane_of(lpn);
                assert!(a.clusters().iter().any(|c| c.plane == plane));
            }
        }
    }

    #[test]
    fn thermal_tilts_by_channel() {
        let mut config =
            base()
                .with_channels(4)
                .with_environment(EnvironmentConfig::default().with_thermal(
                    ThermalGradientConfig {
                        hottest_factor: 3.0,
                    },
                ));
        let env = EnvironmentState::new(&config).unwrap();
        let cool = env.adjust_ber(0, 1e-3); // channel 0
        let hot = env.adjust_ber(3, 1e-3); // channel 3
        assert!((cool - 1e-3).abs() < 1e-12, "channel 0 is x1.0: {cool}");
        assert!((hot - 3e-3).abs() < 1e-12, "channel 3 is x3.0: {hot}");
        // Single channel: whole device at the hottest factor.
        config.channels = 1;
        let env = EnvironmentState::new(&config).unwrap();
        assert!((env.adjust_ber(0, 1e-3) - 3e-3).abs() < 1e-12);
    }

    #[test]
    fn read_disturb_accumulates_and_resets() {
        let config = base().with_environment(EnvironmentConfig::default().with_read_disturb(
            ReadDisturbConfig {
                ber_per_read: 1e-4,
                cap: 5e-4,
            },
        ));
        let mut env = EnvironmentState::new(&config).unwrap();
        assert_eq!(env.adjust_ber(7, 1e-3), 1e-3);
        for _ in 0..3 {
            env.record_read(7);
        }
        assert!((env.adjust_ber(7, 1e-3) - 1.3e-3).abs() < 1e-12);
        // The cap holds.
        for _ in 0..100 {
            env.record_read(7);
        }
        assert!((env.adjust_ber(7, 1e-3) - 1.5e-3).abs() < 1e-12);
        // A program wipes the accumulation.
        env.record_program(7);
        assert_eq!(env.adjust_ber(7, 1e-3), 1e-3);
        // Other pages were never touched.
        assert_eq!(env.adjust_ber(8, 1e-3), 1e-3);
    }

    #[test]
    fn cluster_fer_factor_applies_inside_only() {
        let config = base().with_environment(EnvironmentConfig::default().with_clusters(
            ClusterFaultConfig {
                events: 1,
                ..ClusterFaultConfig::default()
            },
        ));
        let env = EnvironmentState::new(&config).unwrap();
        let c = env.clusters()[0];
        let inside = c.plane + c.row_start * 4; // plane_stride = 4
        assert!(env.in_cluster(inside));
        assert_eq!(env.fer_factor(inside), 25.0);
        let outside = (c.plane + 1) % 4; // row 0 of a different plane
        if !env.in_cluster(outside) {
            assert_eq!(env.fer_factor(outside), 1.0);
        }
    }
}
