//! Simulator-side observability: the bridge between [`SsdSimulator`] and
//! the `flexlevel-obs` recorder.
//!
//! A [`SimObserver`] is attached to a simulator before `run()`
//! ([`SsdSimulator::attach_observer`]); when absent, no observability
//! code executes at all — the `Option` check is the entire disabled-path
//! cost, which keeps golden fixtures and throughput untouched.
//!
//! When attached, the observer records two kinds of data:
//!
//! * **Event-time histograms** — response times, sensing depths, decoder
//!   iterations, recovery depths and (pipelined model) per-stage
//!   busy/wait times, observed as the simulation makes each decision.
//!   Stage histograms are recorded at the *same call site* as
//!   [`SimStats::record_stage`], so their counts reconcile exactly with
//!   [`StageAccount::ops`](crate::stats::StageAccount::ops).
//! * **End-of-run folds** — every `SimStats` counter is copied into the
//!   registry after the run (`SimObserver::finish_run`), guaranteeing
//!   the exported counters equal the golden counters by construction.
//!
//! Read requests additionally emit a structured [`ReadSpan`] with a
//! per-stage latency decomposition that sums to the request's flash
//! service time. Under the single-queue model spans complete inline;
//! under the pipelined model the logical phase builds span skeletons and
//! the event loop fills in start/response times, with spans flushed in
//! request order so trace output is independent of event interleaving.
//!
//! [`SsdSimulator`]: crate::sim::SsdSimulator
//! [`SsdSimulator::attach_observer`]: crate::sim::SsdSimulator::attach_observer
//! [`SimStats::record_stage`]: crate::stats::SimStats::record_stage

use flash_model::Micros;
use obs::{
    EventKind, HistogramId, ReadSpan, Recorder, SeriesSampler, SeriesState, SpanOutcome,
    StageTiming, TraceEvent,
};

use crate::config::Scheme;
use crate::pipeline::StageKind;
use crate::serve::{Backpressure, ServeOptions};
use crate::stats::SimStats;

/// Counter columns of the windowed time series, in column order. All
/// are *logical* `SimStats` counters — functions of the request order
/// alone — so the series is bit-identical across thread counts and
/// timing backends, and survives checkpoint/resume (the counters ride
/// the device image).
const SERIES_COUNTERS: [&str; 20] = [
    "host_reads",
    "host_writes",
    "buffer_read_hits",
    "flash_reads",
    "flash_programs",
    "erases",
    "gc_runs",
    "gc_migrated_pages",
    "promotions",
    "demotions",
    "reduced_reads",
    "retry_reads",
    "recovered_reads",
    "uncorrectable_reads",
    "program_failures",
    "retired_blocks",
    "die_resets",
    "scrub_runs",
    "scrub_reads",
    "scrub_refreshes",
];

/// Gauge columns of the windowed time series. Derived from logical
/// count vectors only (never from measured response times, which differ
/// between timing backends): sensing-level and retry-depth quantiles,
/// the retry rate, and the observed UBER.
const SERIES_GAUGES: [&str; 5] = [
    "sensing_p50",
    "sensing_p99",
    "retry_depth_p99",
    "retry_rate",
    "observed_uber",
];

/// Quantile of a dense count vector (index = value), using the same
/// `round(q·(n−1))` rank convention as `SimStats::response_percentile`.
fn count_quantile(counts: &[u64], q: f64) -> f64 {
    let n: u64 = counts.iter().sum();
    if n == 0 {
        return 0.0;
    }
    let rank = (q * (n - 1) as f64).round() as u64;
    let mut seen = 0u64;
    for (value, &count) in counts.iter().enumerate() {
        seen += count;
        if seen > rank {
            return value as f64;
        }
    }
    (counts.len().saturating_sub(1)) as f64
}

/// Retry reads per host read (0 before any read).
fn retry_rate(stats: &SimStats) -> f64 {
    if stats.host_reads == 0 {
        return 0.0;
    }
    stats.retry_reads as f64 / stats.host_reads as f64
}

fn base_counter_values(stats: &SimStats) -> Vec<u64> {
    vec![
        stats.host_reads,
        stats.host_writes,
        stats.buffer_read_hits,
        stats.flash_reads,
        stats.flash_programs,
        stats.erases,
        stats.gc_runs,
        stats.gc_migrated_pages,
        stats.promotions,
        stats.demotions,
        stats.reduced_reads,
        stats.retry_reads,
        stats.recovered_reads,
        stats.uncorrectable_reads,
        stats.program_failures,
        stats.retired_blocks,
        stats.die_resets,
        stats.scrub_runs,
        stats.scrub_reads,
        stats.scrub_refreshes,
    ]
}

/// The windowed sampler plus the lumped per-tenant SLO tallies it
/// samples. Violations are judged against the *lumped* single-queue
/// response (the same virtual clock admission runs on), so the tallies
/// — unlike `TenantStats::slo_violations` — are identical between
/// timing backends and the tenant series stays backend-invariant.
#[derive(Debug)]
struct SeriesRecorder {
    sampler: SeriesSampler,
    /// Per-tenant SLO targets (µs; 0 = none), from `ServeOptions`.
    slo_targets: Vec<f64>,
    /// Per-tenant lumped-model SLO violations.
    lumped_violations: Vec<u64>,
    /// Per-tenant `(served, violations)` at the last emitted boundary,
    /// for the windowed burn-rate gauge.
    prev_burn: Vec<(u64, u64)>,
}

impl SeriesRecorder {
    /// Gathers the counter and gauge columns at window boundary `t_us`,
    /// advancing the burn-rate baselines.
    fn gather(
        &mut self,
        stats: &SimStats,
        backpressure: &Backpressure,
        t_us: f64,
    ) -> (Vec<u64>, Vec<f64>) {
        let mut counters = base_counter_values(stats);
        let mut gauges = vec![
            count_quantile(&stats.reads_by_sensing_level, 0.5),
            count_quantile(&stats.reads_by_sensing_level, 0.99),
            count_quantile(&stats.retry_depth_histogram, 0.99),
            retry_rate(stats),
            stats.observed_uber(reliability::EccConfig::paper_ldpc().info_bits),
        ];
        for tenant in 0..self.slo_targets.len() {
            let zero = crate::stats::TenantStats::default();
            let t = stats.tenants.get(tenant).unwrap_or(&zero);
            let violations = self.lumped_violations[tenant];
            counters.extend([t.arrivals, t.served, t.dropped, t.deferred, violations]);
            gauges.push(backpressure.inflight_at(tenant as u32, t_us) as f64);
            let (prev_served, prev_violations) = self.prev_burn[tenant];
            let served = t.served - prev_served;
            let burned = violations - prev_violations;
            gauges.push(if served == 0 {
                0.0
            } else {
                burned as f64 / served as f64
            });
            self.prev_burn[tenant] = (t.served, violations);
        }
        (counters, gauges)
    }
}

/// Wall-clock heartbeat state for `--progress`. Emission timing is
/// wall-clock-gated and therefore nondeterministic, which is why the
/// heartbeat goes to stderr and never into a deterministic artifact.
#[derive(Debug)]
struct ProgressMeter {
    last: std::time::Instant,
    every: std::time::Duration,
}

/// Severity-ordered span outcome: later variants dominate earlier ones
/// when a multi-page request mixes outcomes.
const RANK_BUFFER_HIT: u8 = 0;
const RANK_SUCCESS: u8 = 1;
const RANK_RECOVERED: u8 = 2;
const RANK_UNCORRECTABLE: u8 = 3;

fn outcome_of(rank: u8) -> SpanOutcome {
    match rank {
        RANK_BUFFER_HIT => SpanOutcome::BufferHit,
        RANK_SUCCESS => SpanOutcome::Success,
        RANK_RECOVERED => SpanOutcome::Recovered,
        _ => SpanOutcome::Uncorrectable,
    }
}

/// Span fields the logical layer knows before timing is resolved.
#[derive(Debug, Default)]
struct PendingSpan {
    lpn: u64,
    tenant: u32,
    stages: Vec<StageTiming>,
    offset_us: f64,
    sensing_levels: u32,
    decode_iterations: u32,
    retry_rungs: u32,
    rank: u8,
}

/// One request's record while the pipelined event loop resolves timing.
#[derive(Debug)]
struct DeferredRequest {
    arrival: Micros,
    start: Option<Micros>,
    response: Micros,
    span: Option<PendingSpan>,
}

/// Records metrics and read spans for one simulator run.
///
/// Histogram ids are registered at construction, so event-time recording
/// is an array index — no name lookups on the hot path.
#[derive(Debug)]
pub struct SimObserver {
    recorder: Recorder,
    scheme: &'static str,
    h_response: HistogramId,
    h_sensing: HistogramId,
    h_iterations: HistogramId,
    h_retry_depth: HistogramId,
    h_stage_busy: [HistogramId; StageKind::ALL.len()],
    h_stage_wait: [HistogramId; StageKind::ALL.len()],
    /// Per-tenant response histograms, indexed by tenant; registered by
    /// [`ensure_tenants`](Self::ensure_tenants) (empty for replay runs).
    h_tenant_response: Vec<HistogramId>,
    /// Tenant the request currently in the logical layer belongs to
    /// (0 — and never updated — for replay runs).
    current_tenant: u32,
    pending: Option<PendingSpan>,
    deferred: Vec<DeferredRequest>,
    seq: u64,
    /// Windowed time-series sampler; `None` unless enabled via
    /// [`with_series`](Self::with_series).
    series: Option<SeriesRecorder>,
    /// Wall-clock heartbeat; `None` unless enabled via
    /// [`with_progress`](Self::with_progress).
    progress: Option<ProgressMeter>,
    /// Arrival time of the request currently in the logical layer;
    /// instant events are stamped with it so the event stream is a
    /// function of request order alone.
    current_arrival: f64,
    event_seq: u64,
}

impl SimObserver {
    /// Creates an observer for `scheme` whose span buffer keeps at most
    /// `span_sample` spans (`0` keeps every span).
    pub fn new(scheme: Scheme, span_sample: usize) -> SimObserver {
        let mut recorder = Recorder::with_span_sample(span_sample);
        let label = scheme.label();
        let scheme_labels: &[(&str, &str)] = &[("scheme", label)];
        let h_response = recorder.metrics.histogram(
            "flexlevel_response_us",
            "End-to-end host request response time (us).",
            scheme_labels,
        );
        let h_sensing = recorder.metrics.histogram(
            "flexlevel_sensing_levels",
            "Extra soft sensing levels charged per flash-served host read.",
            scheme_labels,
        );
        let h_iterations = recorder.metrics.histogram(
            "flexlevel_decode_iterations",
            "LDPC decoder iterations charged per flash-served host read.",
            scheme_labels,
        );
        let h_retry_depth = recorder.metrics.histogram(
            "flexlevel_retry_depth",
            "Recovery-ladder rungs climbed per faulted frame read.",
            scheme_labels,
        );
        let mut h_stage_busy = [h_response; StageKind::ALL.len()];
        let mut h_stage_wait = [h_response; StageKind::ALL.len()];
        for (i, kind) in StageKind::ALL.iter().enumerate() {
            let labels: &[(&str, &str)] = &[("scheme", label), ("stage", kind.label())];
            h_stage_busy[i] = recorder.metrics.histogram(
                "flexlevel_stage_busy_us",
                "Stage service time per execution (us, pipelined model).",
                labels,
            );
            h_stage_wait[i] = recorder.metrics.histogram(
                "flexlevel_stage_wait_us",
                "Stage queueing delay per execution (us, pipelined model).",
                labels,
            );
        }
        SimObserver {
            recorder,
            scheme: label,
            h_response,
            h_sensing,
            h_iterations,
            h_retry_depth,
            h_stage_busy,
            h_stage_wait,
            h_tenant_response: Vec::new(),
            current_tenant: 0,
            pending: None,
            deferred: Vec::new(),
            seq: 0,
            series: None,
            progress: None,
            current_arrival: 0.0,
            event_seq: 0,
        }
    }

    /// Enables the windowed time series: one snapshot of every counter
    /// and gauge column per `interval_us` of simulated time (clamped to
    /// at least 1 µs). Sampling is keyed to request arrivals, so the
    /// series is bit-identical across thread counts and timing backends.
    #[must_use]
    pub fn with_series(mut self, interval_us: u64) -> SimObserver {
        self.series = Some(SeriesRecorder {
            sampler: SeriesSampler::new(
                self.scheme,
                interval_us,
                SERIES_COUNTERS.iter().map(|s| s.to_string()).collect(),
                SERIES_GAUGES.iter().map(|s| s.to_string()).collect(),
            ),
            slo_targets: Vec::new(),
            lumped_violations: Vec::new(),
            prev_burn: Vec::new(),
        });
        self
    }

    /// Enables the `--progress` heartbeat: roughly once per wall-clock
    /// second a one-line panel (sim time, ops, observed UBER, retry
    /// rate) is printed to stderr.
    #[must_use]
    pub fn with_progress(mut self) -> SimObserver {
        self.progress = Some(ProgressMeter {
            last: std::time::Instant::now(),
            every: std::time::Duration::from_secs(1),
        });
        self
    }

    /// The recorded data so far.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Consumes the observer, yielding the recorded data. A flushed
    /// time series is appended to the recorder as a series block.
    pub fn into_recorder(mut self) -> Recorder {
        if let Some(series) = self.series.take() {
            self.recorder.series.push(series.sampler.into_block());
        }
        self.recorder
    }

    /// Clears recorded values and span state while keeping registered
    /// series valid; called by the simulator's preload so re-running a
    /// simulator does not double-count.
    pub(crate) fn reset(&mut self) {
        self.recorder.metrics.reset_values();
        self.recorder.spans.clear();
        self.pending = None;
        self.deferred.clear();
        self.seq = 0;
        self.current_tenant = 0;
        self.current_arrival = 0.0;
        self.event_seq = 0;
        if let Some(series) = self.series.as_mut() {
            series.sampler.reset();
            series.lumped_violations.iter_mut().for_each(|v| *v = 0);
            series.prev_burn.iter_mut().for_each(|b| *b = (0, 0));
        }
    }

    /// Registers per-tenant response histograms — and, when the time
    /// series is enabled, per-tenant series columns plus SLO targets —
    /// for every tenant in `options` (idempotent: already-registered
    /// tenants keep their ids and columns).
    pub(crate) fn ensure_tenants(&mut self, options: &ServeOptions) {
        let n = options.tenants.len() as u32;
        for tenant in self.h_tenant_response.len() as u32..n {
            let t = tenant.to_string();
            let labels: &[(&str, &str)] = &[("scheme", self.scheme), ("tenant", &t)];
            self.h_tenant_response.push(self.recorder.metrics.histogram(
                "flexlevel_tenant_response_us",
                "Per-tenant host request response time (us).",
                labels,
            ));
        }
        if let Some(series) = self.series.as_mut() {
            for tenant in series.slo_targets.len()..options.tenants.len() {
                series.sampler.extend_schema(
                    &[
                        format!("t{tenant}_arrivals"),
                        format!("t{tenant}_served"),
                        format!("t{tenant}_dropped"),
                        format!("t{tenant}_deferred"),
                        format!("t{tenant}_slo_violations"),
                    ],
                    &[format!("t{tenant}_inflight"), format!("t{tenant}_slo_burn")],
                );
                series.slo_targets.push(options.tenants[tenant].slo_us);
                series.lumped_violations.push(0);
                series.prev_burn.push((0, 0));
            }
        }
    }

    /// Sets the tenant subsequent requests will be attributed to.
    pub(crate) fn set_tenant(&mut self, tenant: u32) {
        self.current_tenant = tenant;
    }

    /// Records one served request's response into its tenant's histogram.
    pub(crate) fn tenant_response(&mut self, tenant: u32, response: Micros) {
        if let Some(&id) = self.h_tenant_response.get(tenant as usize) {
            self.recorder.metrics.observe(id, response.as_f64());
        }
    }

    /// Starts the span of one host request; only reads build spans.
    /// `arrival_us` stamps any instant events the request triggers.
    pub(crate) fn begin_request(&mut self, lpn: u64, is_read: bool, arrival_us: f64) {
        self.current_arrival = arrival_us;
        self.pending = is_read.then(|| PendingSpan {
            lpn,
            tenant: self.current_tenant,
            ..PendingSpan::default()
        });
    }

    /// Appends one stage to the current request's span.
    pub(crate) fn span_stage(&mut self, stage: &'static str, duration: Micros) {
        if let Some(pending) = self.pending.as_mut() {
            pending.stages.push(StageTiming {
                stage,
                offset_us: pending.offset_us,
                duration_us: duration.as_f64(),
            });
            pending.offset_us += duration.as_f64();
        }
    }

    /// Records one flash-served host page read: its sensing depth and
    /// charged decoder iterations.
    pub(crate) fn flash_read(&mut self, levels: u32, iterations: u32) {
        self.recorder.metrics.observe(self.h_sensing, levels as f64);
        self.recorder
            .metrics
            .observe(self.h_iterations, iterations as f64);
        if let Some(pending) = self.pending.as_mut() {
            pending.rank = pending.rank.max(RANK_SUCCESS);
            pending.sensing_levels = pending.sensing_levels.max(levels);
            pending.decode_iterations = pending.decode_iterations.max(iterations);
        }
    }

    /// Records the resolved recovery ladder of one faulted frame read
    /// (`depth == 0` = clean first decode). Ladder climbs (`depth > 0`)
    /// additionally emit an instant trace event.
    pub(crate) fn retry(&mut self, lpn: u64, depth: usize, recovered: bool) {
        self.recorder
            .metrics
            .observe(self.h_retry_depth, depth as f64);
        if let Some(pending) = self.pending.as_mut() {
            pending.retry_rungs += depth as u32;
            if depth > 0 {
                pending.rank = pending.rank.max(if recovered {
                    RANK_RECOVERED
                } else {
                    RANK_UNCORRECTABLE
                });
            }
        }
        if depth > 0 {
            self.push_event(
                lpn,
                EventKind::Retry {
                    depth: depth as u32,
                    recovered,
                },
            );
        }
    }

    /// Emits an instant trace event for a transient die fault that
    /// interposed a reset before the read at `lpn` could be served.
    pub(crate) fn die_reset(&mut self, lpn: u64) {
        self.push_event(lpn, EventKind::DieReset);
    }

    /// Emits an instant trace event for one patrol-scrub visit of
    /// `block` (the event's `lpn` field carries the block id).
    pub(crate) fn scrub(&mut self, block: u64, reads: u32, refreshes: u32) {
        self.push_event(block, EventKind::Scrub { reads, refreshes });
    }

    fn push_event(&mut self, lpn: u64, kind: EventKind) {
        let event = TraceEvent {
            seq: self.event_seq,
            t_us: self.current_arrival,
            scheme: self.scheme,
            tenant: self.current_tenant,
            lpn,
            kind,
        };
        self.event_seq += 1;
        self.recorder.spans.push_event(event);
    }

    /// Arrival hook, called once per host request before its effects
    /// apply: prints the progress heartbeat when due (wall clock,
    /// stderr) and emits every time-series window whose boundary the
    /// arrival crossed. Windows close on arrivals — a trace property —
    /// so snapshots see identical state in every backend.
    pub(crate) fn on_arrival(&mut self, arrival_us: f64, stats: &SimStats, bp: &Backpressure) {
        if let Some(progress) = self.progress.as_mut() {
            if progress.last.elapsed() >= progress.every {
                progress.last = std::time::Instant::now();
                eprintln!(
                    "progress [{}]: sim {:.3} s, {} ops, uber {:.3e}, retry rate {:.5}",
                    self.scheme,
                    arrival_us / 1e6,
                    stats.host_requests(),
                    stats.observed_uber(reliability::EccConfig::paper_ldpc().info_bits),
                    retry_rate(stats),
                );
            }
        }
        if let Some(series) = self.series.as_mut() {
            while let Some(boundary) = series.sampler.due(arrival_us) {
                let (counters, gauges) = series.gather(stats, bp, boundary);
                series.sampler.emit(counters, gauges);
            }
        }
    }

    /// Flushes the final (possibly partial) time-series window.
    /// Idempotent; the backends call it once at the end of a completed
    /// run (never after a prefix or crash, whose unflushed state rides
    /// the device image instead).
    pub(crate) fn series_flush(&mut self, stats: &SimStats, bp: &Backpressure) {
        if let Some(series) = self.series.as_mut() {
            if let Some(boundary) = series.sampler.due(f64::INFINITY) {
                let (counters, gauges) = series.gather(stats, bp, boundary);
                series.sampler.flush(counters, gauges);
            }
        }
    }

    /// Tallies one served request's *lumped* response against its
    /// tenant's SLO (see [`SeriesRecorder`]); the call site is the
    /// backpressure commit, identical in both backends.
    pub(crate) fn tenant_lumped(&mut self, tenant: u32, response_us: f64) {
        if let Some(series) = self.series.as_mut() {
            if let Some(&target) = series.slo_targets.get(tenant as usize) {
                if target > 0.0 && response_us > target {
                    series.lumped_violations[tenant as usize] += 1;
                }
            }
        }
    }

    /// Snapshot of the sampler for the device image (`None` when the
    /// series is disabled).
    pub(crate) fn series_state(&self) -> Option<SeriesState> {
        self.series.as_ref().map(|s| s.sampler.state())
    }

    /// Rehydrates the sampler from a device-image snapshot. Returns
    /// `false` (leaving the fresh sampler in place) when the series is
    /// disabled or the snapshot's interval/schema does not match.
    pub(crate) fn restore_series(&mut self, state: &SeriesState) -> bool {
        self.series
            .as_mut()
            .is_some_and(|s| s.sampler.restore(state))
    }

    /// Completes the current request under the single-queue model.
    pub(crate) fn end_request_single(&mut self, arrival: Micros, start: Micros, response: Micros) {
        self.recorder
            .metrics
            .observe(self.h_response, response.as_f64());
        if let Some(pending) = self.pending.take() {
            self.emit_span(pending, arrival, start, response);
        }
    }

    /// Defers the current request for the pipelined event loop to time.
    pub(crate) fn end_request_deferred(&mut self, arrival: Micros) {
        self.deferred.push(DeferredRequest {
            arrival,
            start: None,
            response: Micros::ZERO,
            span: self.pending.take(),
        });
    }

    /// Pipelined: request `index`'s foreground chain entered service.
    pub(crate) fn deferred_started(&mut self, index: usize, start: Micros) {
        self.deferred[index].start = Some(start);
    }

    /// Pipelined: request `index` completed with `response`.
    pub(crate) fn deferred_finished(&mut self, index: usize, response: Micros) {
        self.deferred[index].response = response;
    }

    /// Pipelined: emits deferred spans and response observations in
    /// request order, making trace/metric state independent of the event
    /// loop's interleaving.
    pub(crate) fn flush_deferred(&mut self) {
        for mut deferred in std::mem::take(&mut self.deferred) {
            self.recorder
                .metrics
                .observe(self.h_response, deferred.response.as_f64());
            if let Some(span) = deferred.span.take() {
                let start = deferred.start.unwrap_or(deferred.arrival);
                self.emit_span(span, deferred.arrival, start, deferred.response);
            }
        }
    }

    /// Records one pipeline stage execution (same call site as
    /// [`SimStats::record_stage`], so counts reconcile exactly).
    pub(crate) fn record_stage(&mut self, kind: StageKind, busy: Micros, wait: Micros) {
        let i = kind as usize;
        self.recorder
            .metrics
            .observe(self.h_stage_busy[i], busy.as_f64());
        self.recorder
            .metrics
            .observe(self.h_stage_wait[i], wait.as_f64());
    }

    fn emit_span(
        &mut self,
        pending: PendingSpan,
        arrival: Micros,
        start: Micros,
        response: Micros,
    ) {
        let span = ReadSpan {
            seq: self.seq,
            lpn: pending.lpn,
            scheme: self.scheme,
            tenant: pending.tenant,
            arrival_us: arrival.as_f64(),
            start_us: start.as_f64(),
            response_us: response.as_f64(),
            sensing_levels: pending.sensing_levels,
            decode_iterations: pending.decode_iterations,
            retry_rungs: pending.retry_rungs,
            stages: pending.stages,
            outcome: outcome_of(pending.rank),
        };
        self.seq += 1;
        self.recorder.spans.push(span);
    }

    /// Folds the finished run's `SimStats` into the registry: every
    /// operation counter is copied verbatim (so exported counters equal
    /// the golden counters by construction) along with derived gauges.
    pub(crate) fn finish_run(&mut self, stats: &SimStats, host_pages_written: u64) {
        let scheme = self.scheme;
        let labels: &[(&str, &str)] = &[("scheme", scheme)];
        let registry = &mut self.recorder.metrics;
        let mut fold = |name: &str, help: &str, value: u64| {
            let id = registry.counter(name, help, labels);
            registry.set_counter(id, value);
        };
        fold(
            "flexlevel_host_reads_total",
            "Host read requests served.",
            stats.host_reads,
        );
        fold(
            "flexlevel_host_writes_total",
            "Host write requests served.",
            stats.host_writes,
        );
        fold(
            "flexlevel_buffer_read_hits_total",
            "Host page reads served from the write buffer.",
            stats.buffer_read_hits,
        );
        fold(
            "flexlevel_flash_reads_total",
            "Flash page reads (host + GC + migration + retry).",
            stats.flash_reads,
        );
        fold(
            "flexlevel_flash_programs_total",
            "Flash page programs (host + GC + migration).",
            stats.flash_programs,
        );
        fold("flexlevel_erases_total", "Block erases.", stats.erases);
        fold("flexlevel_gc_runs_total", "GC invocations.", stats.gc_runs);
        fold(
            "flexlevel_gc_migrated_pages_total",
            "Valid pages relocated by GC.",
            stats.gc_migrated_pages,
        );
        fold(
            "flexlevel_promotions_total",
            "AccessEval promotions into reduced pages.",
            stats.promotions,
        );
        fold(
            "flexlevel_demotions_total",
            "AccessEval demotions back to normal pages.",
            stats.demotions,
        );
        fold(
            "flexlevel_reduced_reads_total",
            "Host page reads served from reduced-state pages.",
            stats.reduced_reads,
        );
        fold(
            "flexlevel_retry_reads_total",
            "Extra flash read attempts spent by the recovery ladder.",
            stats.retry_reads,
        );
        fold(
            "flexlevel_recovered_reads_total",
            "Frame reads recovered by the retry ladder.",
            stats.recovered_reads,
        );
        fold(
            "flexlevel_uncorrectable_reads_total",
            "Frame reads the full ladder could not recover.",
            stats.uncorrectable_reads,
        );
        fold(
            "flexlevel_program_failures_total",
            "Page programs that failed their status check.",
            stats.program_failures,
        );
        fold(
            "flexlevel_retired_blocks_total",
            "Blocks retired as grown-bad.",
            stats.retired_blocks,
        );
        fold(
            "flexlevel_die_resets_total",
            "Transient whole-die faults cleared by a reset.",
            stats.die_resets,
        );
        fold(
            "flexlevel_scrub_runs_total",
            "Patrol-scrub block visits.",
            stats.scrub_runs,
        );
        fold(
            "flexlevel_scrub_reads_total",
            "Pages read by the patrol scrubber.",
            stats.scrub_reads,
        );
        fold(
            "flexlevel_scrub_refreshes_total",
            "Pages rewritten by the scrubber on retention-BER threshold.",
            stats.scrub_refreshes,
        );
        // Recovery counters only exist after a crash-restore; gating on
        // nonzero keeps every pre-existing export byte-identical.
        if stats.journal_replayed > 0 {
            fold(
                "flexlevel_journal_replayed_total",
                "Mapping-journal records replayed during crash recovery.",
                stats.journal_replayed,
            );
        }
        if stats.torn_pages_discarded > 0 {
            fold(
                "flexlevel_torn_pages_discarded_total",
                "Torn (interrupted-program) pages discarded during recovery.",
                stats.torn_pages_discarded,
            );
        }
        if stats.checkpoint_age_requests > 0 {
            fold(
                "flexlevel_checkpoint_age_requests",
                "Requests served between the restored checkpoint and the crash.",
                stats.checkpoint_age_requests,
            );
        }
        for kind in StageKind::ALL {
            let stage_labels: &[(&str, &str)] = &[("scheme", scheme), ("stage", kind.label())];
            let account = stats.stage(kind);
            let ops = registry.counter(
                "flexlevel_stage_ops_total",
                "Stage executions (pipelined model).",
                stage_labels,
            );
            registry.set_counter(ops, account.ops);
            let busy = registry.gauge(
                "flexlevel_stage_busy_total_us",
                "Total stage busy time (us, pipelined model).",
                stage_labels,
            );
            registry.set_gauge(busy, account.busy_us);
            let wait = registry.gauge(
                "flexlevel_stage_wait_total_us",
                "Total stage wait time (us, pipelined model).",
                stage_labels,
            );
            registry.set_gauge(wait, account.wait_us);
        }
        let mut gauge = |name: &str, help: &str, value: f64| {
            let id = registry.gauge(name, help, labels);
            registry.set_gauge(id, value);
        };
        gauge(
            "flexlevel_makespan_us",
            "Schedule makespan (us).",
            stats.makespan_us,
        );
        gauge(
            "flexlevel_throughput_rps",
            "Host requests per second of makespan.",
            stats.throughput_rps(),
        );
        gauge(
            "flexlevel_mean_response_us",
            "Mean host request response time (us).",
            stats.mean_response().as_f64(),
        );
        gauge(
            "flexlevel_mean_read_response_us",
            "Mean host read response time (us).",
            stats.mean_read_response().as_f64(),
        );
        gauge(
            "flexlevel_p99_response_us",
            "99th-percentile host response time (us).",
            stats.response_percentile(0.99).as_f64(),
        );
        gauge(
            "flexlevel_soft_read_fraction",
            "Fraction of normal-page host reads needing soft sensing.",
            stats.soft_read_fraction(),
        );
        gauge(
            "flexlevel_write_amplification",
            "Flash programs per host-written page.",
            stats.write_amplification(host_pages_written),
        );
        gauge(
            "flexlevel_observed_uber",
            "Uncorrectable reads per information bit read.",
            stats.observed_uber(reliability::EccConfig::paper_ldpc().info_bits),
        );
        for (tenant, t) in stats.tenants.iter().enumerate() {
            let label = tenant.to_string();
            let tenant_labels: &[(&str, &str)] = &[("scheme", scheme), ("tenant", &label)];
            let mut fold = |name: &str, help: &str, value: u64| {
                let id = registry.counter(name, help, tenant_labels);
                registry.set_counter(id, value);
            };
            fold(
                "flexlevel_tenant_arrivals_total",
                "Requests the tenant submitted.",
                t.arrivals,
            );
            fold(
                "flexlevel_tenant_served_total",
                "Tenant requests admitted and completed.",
                t.served,
            );
            fold(
                "flexlevel_tenant_dropped_total",
                "Tenant requests rejected by queue-depth backpressure.",
                t.dropped,
            );
            fold(
                "flexlevel_tenant_deferred_total",
                "Tenant requests delayed by queue-depth backpressure.",
                t.deferred,
            );
            fold(
                "flexlevel_tenant_slo_violations_total",
                "Served tenant requests exceeding their SLO target.",
                t.slo_violations,
            );
            let mut gauge = |name: &str, help: &str, value: f64| {
                let id = registry.gauge(name, help, tenant_labels);
                registry.set_gauge(id, value);
            };
            gauge(
                "flexlevel_tenant_slo_target_us",
                "Tenant latency SLO target (us; 0 = none).",
                t.slo_target_us,
            );
            gauge(
                "flexlevel_tenant_mean_response_us",
                "Mean tenant response time (us).",
                t.mean_response().as_f64(),
            );
            gauge(
                "flexlevel_tenant_p50_response_us",
                "Median tenant response time (us).",
                t.p50().as_f64(),
            );
            gauge(
                "flexlevel_tenant_p99_response_us",
                "99th-percentile tenant response time (us).",
                t.p99().as_f64(),
            );
            gauge(
                "flexlevel_tenant_p999_response_us",
                "99.9th-percentile tenant response time (us).",
                t.p999().as_f64(),
            );
        }
    }
}
