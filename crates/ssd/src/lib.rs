//! Trace-driven SSD simulator for the FlexLevel evaluation.
//!
//! A FlashSim-equivalent substrate (the paper modified FlashSim \[20\] for
//! its §6.2 experiments): page-mapping FTL with greedy garbage
//! collection, a write-back buffer, per-block wear, per-page retention
//! ages, and LDPC-aware read latency. Four storage schemes are modelled
//! (`Scheme`): the unoptimised baseline, LDPC-in-SSD's progressive
//! sensing, LevelAdjust applied indiscriminately, and the full
//! LevelAdjust + AccessEval FlexLevel system.
//!
//! # Example
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use ssd::{Scheme, SsdConfig, SsdSimulator};
//! use workloads::WorkloadSpec;
//!
//! let trace = WorkloadSpec::fin2()
//!     .with_requests(2_000)
//!     .with_footprint(1_000)
//!     .generate(&mut StdRng::seed_from_u64(1));
//!
//! let mut sim = SsdSimulator::new(SsdConfig::scaled(Scheme::FlexLevel, 64));
//! let stats = sim.run(&trace).expect("trace fits the device");
//! println!("mean response: {}", stats.mean_response());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod buffer;
pub mod config;
pub mod device;
pub mod events;
pub mod faults;
pub mod ftl;
pub mod ftl_hybrid;
pub mod lifetime;
pub mod obs;
pub mod pipeline;
pub mod recovery;
pub mod scenario;
pub mod serve;
pub mod sim;
pub mod stats;

pub use buffer::WriteBuffer;
pub use config::{Scheme, SsdConfig, TimingModel};
pub use device::{ReliabilityState, ResourcePool};
pub use events::{Event, EventQueue};
pub use faults::{CrashPlan, CrashTrigger, FaultConfig, FaultState};
pub use ftl::{
    BlockImage, FtlError, FtlImage, GcPolicy, JournalRecord, OpCost, PageMapFtl, RecoveryReport,
    TornPage,
};
pub use ftl_hybrid::HybridFtl;
pub use lifetime::LifetimeModel;
pub use obs::SimObserver;
pub use pipeline::{FlashOp, Stage, StageKind};
pub use recovery::{
    config_fingerprint, trace_fingerprint, DeviceImage, ImageError, RecoveryOutcome, RetryRung,
};
pub use scenario::{
    ClusterFaultConfig, EnvironmentConfig, EnvironmentState, ReadDisturbConfig, ScenarioSpec,
    ThermalGradientConfig,
};
pub use serve::{OverloadPolicy, ServeError, ServeOptions, TenantQos};
pub use sim::{CrashCut, SimError, SsdSimulator};
pub use stats::{SimStats, StageAccount, TenantStats};
