//! The read error-recovery ladder.
//!
//! When a frame fails to decode (see [`crate::faults`]), the controller
//! does not give up — it climbs a deterministic escalation ladder, the
//! standard sequence of real parts and of the read-retry literature
//! (arXiv:2202.05661, arXiv:1309.0566):
//!
//! 1. **Vref-shift re-read** — re-sense at the *same* soft depth with the
//!    best [`reliability::RetryTable`] reference shift; the FER improves
//!    by the table's calibrated-over-nominal gain.
//! 2. **Progressive soft-sensing escalation** — re-read with one more
//!    extra level per rung up to the schedule maximum, each rung buying
//!    a further FER factor (more soft information, larger effective
//!    correction budget).
//! 3. **Final deep calibration** — a last full-depth attempt with per-die
//!    optimal-shift search beyond the discrete table.
//!
//! If the final rung also fails the sector is declared **uncorrectable**
//! (this model has no RAID layer above the ECC) and feeds the
//! [`reliability::uber`](reliability::EccConfig) data-loss accounting.
//!
//! The ladder is resolved against *one* uniform draw `u`: rung `r` is
//! attempted iff `u` falls below rung `r−1`'s failure rate, so the
//! attempt sequence is monotone by construction and the whole outcome is
//! a pure function of `(u, initial FER, rung factors)` — no extra
//! randomness, no order dependence. Each attempted rung is then *priced*
//! by the simulator exactly like a first-class read at that rung's
//! sensing depth, occupying die, channel and decoder resources in the
//! pipelined timing model.

/// One attempted rung of the recovery ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryRung {
    /// Extra soft sensing levels this attempt was read with.
    pub levels: u32,
    /// Failure probability *after* this attempt (the chance the ladder
    /// continues past it).
    pub fer: f64,
}

/// The resolved outcome of one faulted read.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOutcome {
    /// Every rung that was attempted, in order.
    pub rungs: Vec<RetryRung>,
    /// `true` if some rung decoded the frame; `false` declares the sector
    /// uncorrectable.
    pub recovered: bool,
}

impl RecoveryOutcome {
    /// Retry depth: the number of extra read attempts the ladder spent.
    pub fn depth(&self) -> usize {
        self.rungs.len()
    }
}

/// Deepest possible ladder for a read first sensed at `levels` of
/// `max_levels`: one Vref re-read, one escalation per remaining level,
/// and the final deep-calibration attempt.
pub fn max_depth(levels: u32, max_levels: u32) -> usize {
    max_levels.saturating_sub(levels) as usize + 2
}

/// Resolves the ladder for a read whose initial attempt failed: `u` is
/// the read's uniform fault draw (`u < fer0`), `fer0` the initial
/// frame-error rate at `levels` extra senses. `retry_factor`,
/// `escalate_factor` and `final_factor` are the FER multipliers of the
/// Vref rung, each escalation rung and the final deep rung; factors are
/// clamped to `(0, 1]` so the rung FERs decrease monotonically.
pub fn resolve(
    u: f64,
    fer0: f64,
    levels: u32,
    max_levels: u32,
    retry_factor: f64,
    escalate_factor: f64,
    final_factor: f64,
) -> RecoveryOutcome {
    let clamp = |f: f64| f.clamp(f64::MIN_POSITIVE, 1.0);
    let mut rungs = Vec::with_capacity(max_depth(levels, max_levels));
    let mut fer = fer0.clamp(0.0, 1.0);
    let attempt = |fer: f64, levels: u32, rungs: &mut Vec<RetryRung>| {
        rungs.push(RetryRung { levels, fer });
        u >= fer // recovered by this rung?
    };
    // Rung 1: Vref-shift re-read at the same sensing depth.
    fer *= clamp(retry_factor);
    if attempt(fer, levels, &mut rungs) {
        return RecoveryOutcome {
            rungs,
            recovered: true,
        };
    }
    // Rungs 2..: progressive escalation to deeper soft sensing.
    for deeper in (levels + 1)..=max_levels.max(levels) {
        fer *= clamp(escalate_factor);
        if attempt(fer, deeper, &mut rungs) {
            return RecoveryOutcome {
                rungs,
                recovered: true,
            };
        }
    }
    // Final rung: deep calibration at full depth; failure past this is
    // an uncorrectable sector.
    fer *= clamp(final_factor);
    let recovered = attempt(fer, max_levels.max(levels), &mut rungs);
    RecoveryOutcome { rungs, recovered }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FACTORS: (f64, f64, f64) = (0.3, 0.25, 0.1);

    fn run(u: f64, fer0: f64, levels: u32) -> RecoveryOutcome {
        resolve(u, fer0, levels, 6, FACTORS.0, FACTORS.1, FACTORS.2)
    }

    #[test]
    fn shallow_fault_recovers_on_the_vref_rung() {
        // u just below fer0 but above fer0 × retry_factor: one re-read.
        let out = run(5e-3, 1e-2, 4);
        assert!(out.recovered);
        assert_eq!(out.depth(), 1);
        assert_eq!(out.rungs[0].levels, 4, "same depth, shifted references");
    }

    #[test]
    fn deeper_faults_climb_monotonically() {
        let out = run(1e-4, 1e-2, 3);
        assert!(out.recovered);
        assert!(out.depth() >= 2);
        // Sensing depth never decreases along the ladder.
        assert!(out.rungs.windows(2).all(|w| w[0].levels <= w[1].levels));
        // Rung FERs strictly decrease (factors < 1).
        assert!(out.rungs.windows(2).all(|w| w[0].fer > w[1].fer));
    }

    #[test]
    fn hopeless_draw_is_uncorrectable_at_max_depth() {
        let out = run(0.0, 1e-2, 2);
        assert!(!out.recovered);
        assert_eq!(out.depth(), max_depth(2, 6));
        assert_eq!(out.rungs.last().unwrap().levels, 6);
    }

    #[test]
    fn ladder_from_full_depth_has_two_rungs() {
        // A read already at max sensing can only Vref-retry and deep-cal.
        assert_eq!(max_depth(6, 6), 2);
        let out = run(0.0, 1e-2, 6);
        assert_eq!(out.depth(), 2);
        assert!(out.rungs.iter().all(|r| r.levels == 6));
    }

    #[test]
    fn depth_is_monotone_in_the_draw() {
        // Smaller u (a worse fault) never yields a shallower ladder.
        let mut prev = 0;
        for u in [9e-3, 2e-3, 4e-4, 1e-5, 1e-8, 0.0] {
            let d = run(u, 1e-2, 0).depth();
            assert!(d >= prev, "u={u}: depth {d} < {prev}");
            prev = d;
        }
        assert_eq!(prev, max_depth(0, 6));
    }

    #[test]
    fn degenerate_factors_are_clamped() {
        // Zero/negative factors must not freeze the ladder at fer 0-division
        // weirdness; they clamp to a tiny positive value, so the first
        // rung recovers anything with u > 0.
        let out = resolve(1e-300, 1.0, 0, 6, 0.0, -1.0, 0.0);
        assert!(out.recovered);
        assert_eq!(out.depth(), 1);
        // And a factor > 1 cannot make rungs *worse* than the last.
        let out = resolve(5e-3, 1e-2, 5, 6, 7.0, 7.0, 7.0);
        assert!(out.rungs.windows(2).all(|w| w[0].fer >= w[1].fer));
    }

    #[test]
    fn resolved_outcome_is_pure() {
        let a = run(3e-4, 8e-3, 1);
        let b = run(3e-4, 8e-3, 1);
        assert_eq!(a, b);
    }
}
