//! Read error recovery and sudden-power-off recovery (SPOR).
//!
//! Two recovery layers live here. The first is the per-read **error
//! recovery ladder** below. The second is device-level **crash
//! recovery**: [`DeviceImage`] is a versioned, length-prefixed binary
//! checkpoint of everything mutable in the simulated device (FTL,
//! buffer, reliability accumulators, fault counters, statistics), and
//! together with the FTL's append-only mapping journal it makes the
//! device crash-consistent — see `PageMapFtl::recover` and DESIGN.md
//! §5.8.
//!
//! When a frame fails to decode (see [`crate::faults`]), the controller
//! does not give up — it climbs a deterministic escalation ladder, the
//! standard sequence of real parts and of the read-retry literature
//! (arXiv:2202.05661, arXiv:1309.0566):
//!
//! 1. **Vref-shift re-read** — re-sense at the *same* soft depth with the
//!    best [`reliability::RetryTable`] reference shift; the FER improves
//!    by the table's calibrated-over-nominal gain.
//! 2. **Progressive soft-sensing escalation** — re-read with one more
//!    extra level per rung up to the schedule maximum, each rung buying
//!    a further FER factor (more soft information, larger effective
//!    correction budget).
//! 3. **Final deep calibration** — a last full-depth attempt with per-die
//!    optimal-shift search beyond the discrete table.
//!
//! If the final rung also fails the sector is declared **uncorrectable**
//! (this model has no RAID layer above the ECC) and feeds the
//! [`reliability::uber`](reliability::EccConfig) data-loss accounting.
//!
//! The ladder is resolved against *one* uniform draw `u`: rung `r` is
//! attempted iff `u` falls below rung `r−1`'s failure rate, so the
//! attempt sequence is monotone by construction and the whole outcome is
//! a pure function of `(u, initial FER, rung factors)` — no extra
//! randomness, no order dependence. Each attempted rung is then *priced*
//! by the simulator exactly like a first-class read at that rung's
//! sensing depth, occupying die, channel and decoder resources in the
//! pipelined timing model.

/// One attempted rung of the recovery ladder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryRung {
    /// Extra soft sensing levels this attempt was read with.
    pub levels: u32,
    /// Failure probability *after* this attempt (the chance the ladder
    /// continues past it).
    pub fer: f64,
}

/// The resolved outcome of one faulted read.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOutcome {
    /// Every rung that was attempted, in order.
    pub rungs: Vec<RetryRung>,
    /// `true` if some rung decoded the frame; `false` declares the sector
    /// uncorrectable.
    pub recovered: bool,
}

impl RecoveryOutcome {
    /// Retry depth: the number of extra read attempts the ladder spent.
    pub fn depth(&self) -> usize {
        self.rungs.len()
    }
}

/// Deepest possible ladder for a read first sensed at `levels` of
/// `max_levels`: one Vref re-read, one escalation per remaining level,
/// and the final deep-calibration attempt.
pub fn max_depth(levels: u32, max_levels: u32) -> usize {
    max_levels.saturating_sub(levels) as usize + 2
}

/// Resolves the ladder for a read whose initial attempt failed: `u` is
/// the read's uniform fault draw (`u < fer0`), `fer0` the initial
/// frame-error rate at `levels` extra senses. `retry_factor`,
/// `escalate_factor` and `final_factor` are the FER multipliers of the
/// Vref rung, each escalation rung and the final deep rung; factors are
/// clamped to `(0, 1]` so the rung FERs decrease monotonically.
pub fn resolve(
    u: f64,
    fer0: f64,
    levels: u32,
    max_levels: u32,
    retry_factor: f64,
    escalate_factor: f64,
    final_factor: f64,
) -> RecoveryOutcome {
    let clamp = |f: f64| f.clamp(f64::MIN_POSITIVE, 1.0);
    let mut rungs = Vec::with_capacity(max_depth(levels, max_levels));
    let mut fer = fer0.clamp(0.0, 1.0);
    let attempt = |fer: f64, levels: u32, rungs: &mut Vec<RetryRung>| {
        rungs.push(RetryRung { levels, fer });
        u >= fer // recovered by this rung?
    };
    // Rung 1: Vref-shift re-read at the same sensing depth.
    fer *= clamp(retry_factor);
    if attempt(fer, levels, &mut rungs) {
        return RecoveryOutcome {
            rungs,
            recovered: true,
        };
    }
    // Rungs 2..: progressive escalation to deeper soft sensing.
    for deeper in (levels + 1)..=max_levels.max(levels) {
        fer *= clamp(escalate_factor);
        if attempt(fer, deeper, &mut rungs) {
            return RecoveryOutcome {
                rungs,
                recovered: true,
            };
        }
    }
    // Final rung: deep calibration at full depth; failure past this is
    // an uncorrectable sector.
    fer *= clamp(final_factor);
    let recovered = attempt(fer, max_levels.max(levels), &mut rungs);
    RecoveryOutcome { rungs, recovered }
}

// ---------------------------------------------------------------------
// Sudden-power-off recovery: the durable device image.
// ---------------------------------------------------------------------

use flash_model::{BlockId, CellMode};
use flexlevel::AccessEvalSnapshot;
use workloads::Trace;

use crate::config::SsdConfig;
use crate::ftl::{BlockImage, Fnv, FtlImage, GcPolicy, JournalRecord, TornPage};
use crate::stats::{SimStats, StageAccount};

/// Why a [`DeviceImage`] could not be decoded or restored. Corrupted or
/// truncated input always surfaces as one of these — never a panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImageError {
    /// The byte stream ended before the encoded structure did.
    Truncated,
    /// The magic prefix is missing or wrong (not a device image).
    BadMagic,
    /// The format version is unknown to this build.
    BadVersion(u16),
    /// The image was checkpointed under a different simulator
    /// configuration.
    ConfigMismatch {
        /// Fingerprint of the configuration doing the restore.
        expected: u64,
        /// Fingerprint stored in the image.
        found: u64,
    },
    /// The image was checkpointed against a different trace.
    TraceMismatch {
        /// Fingerprint of the trace driving the resume.
        expected: u64,
        /// Fingerprint stored in the image.
        found: u64,
    },
    /// A structurally invalid encoding (bad tag, bad length, trailing
    /// bytes, out-of-range reference).
    Corrupt(&'static str),
    /// The decoded state violates an FTL invariant.
    Invariant(String),
}

impl std::fmt::Display for ImageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImageError::Truncated => write!(f, "device image truncated"),
            ImageError::BadMagic => write!(f, "not a device image (bad magic)"),
            ImageError::BadVersion(v) => write!(f, "unsupported device-image version {v}"),
            ImageError::ConfigMismatch { expected, found } => write!(
                f,
                "image checkpointed under a different config \
                 (expected {expected:#018x}, found {found:#018x})"
            ),
            ImageError::TraceMismatch { expected, found } => write!(
                f,
                "image checkpointed against a different trace \
                 (expected {expected:#018x}, found {found:#018x})"
            ),
            ImageError::Corrupt(what) => write!(f, "corrupt device image: {what}"),
            ImageError::Invariant(what) => write!(f, "recovered state violates invariant: {what}"),
        }
    }
}

impl std::error::Error for ImageError {}

/// Fingerprint of a simulator configuration (FNV-1a over its canonical
/// debug rendering), stored in every [`DeviceImage`] so a restore under
/// a different configuration fails typed instead of diverging silently.
pub fn config_fingerprint(config: &SsdConfig) -> u64 {
    let mut h = Fnv::new();
    h.bytes(format!("{config:?}").as_bytes());
    h.0
}

/// Fingerprint of a trace (name, footprint and every request), stored in
/// the image when the checkpoint is tied to a specific replay so a
/// resume against a different trace fails typed. Zero means unchecked.
pub fn trace_fingerprint(trace: &Trace) -> u64 {
    let mut h = Fnv::new();
    h.bytes(trace.name.as_bytes());
    h.u64(trace.footprint_pages);
    h.u64(trace.requests.len() as u64);
    for r in &trace.requests {
        h.u64(r.arrival_us.to_bits());
        h.u64(r.lpn);
        h.u32(r.pages);
        h.byte(match r.op {
            workloads::IoOp::Read => 0,
            workloads::IoOp::Write => 1,
        });
    }
    // Avoid colliding with the "unchecked" sentinel.
    if h.0 == 0 {
        1
    } else {
        h.0
    }
}

/// A durable checkpoint of the simulated device: everything mutable that
/// the next session (or crash recovery) needs to continue bit-identically
/// — FTL image and mapping journal, write buffer, per-page retention
/// ages and RNG state, AccessEval accumulators, fault-stream counters,
/// read-disturb counters, statistics, and the request cursor.
///
/// Serialized with the same conventions as `workloads::codec`: magic
/// prefix, version, little-endian, length-prefixed collections, floats
/// as IEEE-754 bits. Pure caches (BER memos, FER memos) are excluded —
/// they repopulate deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceImage {
    /// Fingerprint of the [`SsdConfig`] the image was checkpointed under.
    pub config_fingerprint: u64,
    /// Fingerprint of the driving trace (`0` = not tied to a trace).
    pub trace_fingerprint: u64,
    /// Zero-based index of the next unserved request.
    pub request_cursor: u64,
    /// The FTL snapshot.
    pub ftl: FtlImage,
    /// Write-buffer entries as `(sequence, lpn)` in LRU order.
    pub buffer: Vec<(u64, u64)>,
    /// The buffer's next LRU sequence number.
    pub buffer_next_seq: u64,
    /// Per-page retention ages as `(lpn, hours)` sorted by LPN.
    pub ages: Vec<(u64, f64)>,
    /// Raw state of the age-sampling RNG.
    pub age_rng: [u64; 4],
    /// AccessEval accumulators (FlexLevel scheme only).
    pub access_eval: Option<AccessEvalSnapshot>,
    /// Fault-stream counters as `(kind tag, lpn, count)` sorted; `None`
    /// when fault injection is off.
    pub fault_counters: Option<Vec<(u64, u64, u64)>>,
    /// Read-disturb counters as `(lpn, reads)` sorted; `None` when no
    /// environment tracks disturb.
    pub disturb: Option<Vec<(u64, u64)>>,
    /// Statistics accumulated up to the checkpoint.
    pub stats: SimStats,
    /// Host pages written (lifetime accounting input).
    pub host_pages_written: u64,
    /// Requests until the next patrol-scrub visit.
    pub scrub_countdown: u64,
    /// The scrubber's block cursor.
    pub scrub_cursor: u32,
    /// Busy horizon per channel, µs (single-queue timing model).
    pub channel_free_at: Vec<f64>,
    /// Mapping-journal records appended after the checkpoint (empty for
    /// a clean checkpoint; non-empty when the image carries a crash).
    pub journal: Vec<JournalRecord>,
    /// Torn page left by a program the crash interrupted.
    pub torn: Option<TornPage>,
    /// Request index at which power was cut, if this image is a crash.
    pub crashed_at: Option<u64>,
    /// Time-series sampler state (emitted windows plus the open window's
    /// baselines), so a resumed campaign's series continues byte-for-byte
    /// where the checkpointed run left off. `None` when the checkpointed
    /// run recorded no series (including every version-1 image).
    pub series: Option<obs::SeriesState>,
}

const IMAGE_MAGIC: &[u8; 4] = b"FXD1";
/// Version 2 appended the optional time-series state; version-1 images
/// (no series) still decode.
const IMAGE_VERSION: u16 = 2;

/// Little-endian encoder over a growable byte buffer.
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new() -> Enc {
        Enc {
            buf: Vec::with_capacity(4096),
        }
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn bool(&mut self, v: bool) {
        self.u8(v as u8);
    }

    fn len(&mut self, n: usize) {
        self.u32(n as u32);
    }
}

/// Little-endian decoder with explicit remaining-length checks; every
/// short read surfaces as [`ImageError::Truncated`].
struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(data: &'a [u8]) -> Dec<'a> {
        Dec { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageError> {
        if self.data.len() - self.pos < n {
            return Err(ImageError::Truncated);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ImageError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ImageError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ImageError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ImageError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, ImageError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn bool(&mut self) -> Result<bool, ImageError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(ImageError::Corrupt("boolean out of range")),
        }
    }

    fn len(&mut self) -> Result<usize, ImageError> {
        let n = self.u32()? as usize;
        // A length can never exceed the bytes that remain (every element
        // is at least one byte) — reject absurd lengths before allocating.
        if n > self.data.len() - self.pos {
            return Err(ImageError::Truncated);
        }
        Ok(n)
    }

    fn done(&self) -> Result<(), ImageError> {
        if self.pos == self.data.len() {
            Ok(())
        } else {
            Err(ImageError::Corrupt("trailing bytes"))
        }
    }
}

fn encode_stage(e: &mut Enc, s: &StageAccount) {
    e.u64(s.ops);
    e.f64(s.busy_us);
    e.f64(s.wait_us);
}

fn decode_stage(d: &mut Dec<'_>) -> Result<StageAccount, ImageError> {
    Ok(StageAccount {
        ops: d.u64()?,
        busy_us: d.f64()?,
        wait_us: d.f64()?,
    })
}

fn encode_stats(e: &mut Enc, s: &SimStats) {
    e.u64(s.host_reads);
    e.u64(s.host_writes);
    e.u64(s.buffer_read_hits);
    e.u64(s.flash_reads);
    e.u64(s.flash_programs);
    e.u64(s.erases);
    e.u64(s.gc_runs);
    e.u64(s.gc_migrated_pages);
    e.u64(s.promotions);
    e.u64(s.demotions);
    e.u64(s.reduced_reads);
    e.len(s.reads_by_sensing_level.len());
    for &v in &s.reads_by_sensing_level {
        e.u64(v);
    }
    e.f64(s.total_response_us);
    e.f64(s.read_response_us);
    e.f64(s.max_response_us);
    e.len(s.response_samples.len());
    for &v in &s.response_samples {
        e.f64(v);
    }
    e.u64(s.responses_seen);
    e.u64(s.sample_state);
    e.f64(s.makespan_us);
    e.u64(s.retry_reads);
    e.u64(s.recovered_reads);
    e.u64(s.uncorrectable_reads);
    e.len(s.retry_depth_histogram.len());
    for &v in &s.retry_depth_histogram {
        e.u64(v);
    }
    e.u64(s.program_failures);
    e.u64(s.retired_blocks);
    e.u64(s.die_resets);
    e.u64(s.scrub_runs);
    e.u64(s.scrub_reads);
    e.u64(s.scrub_refreshes);
    e.f64(s.recovery_latency_us);
    encode_stage(e, &s.stage_sense);
    encode_stage(e, &s.stage_transfer);
    encode_stage(e, &s.stage_decode);
    encode_stage(e, &s.stage_program);
    encode_stage(e, &s.stage_erase);
    // Tenanted (open-loop serving) state is not checkpointable; the
    // count is stored so the decoder can reject a hand-edited image.
    e.len(s.tenants.len());
    e.u64(s.journal_replayed);
    e.u64(s.torn_pages_discarded);
    e.u64(s.checkpoint_age_requests);
}

// Sequential assignment keeps every `d.xxx()?` on its own line in wire
// order, mirroring `encode_stats` field for field.
#[allow(clippy::field_reassign_with_default)]
fn decode_stats(d: &mut Dec<'_>) -> Result<SimStats, ImageError> {
    let mut s = SimStats::default();
    s.host_reads = d.u64()?;
    s.host_writes = d.u64()?;
    s.buffer_read_hits = d.u64()?;
    s.flash_reads = d.u64()?;
    s.flash_programs = d.u64()?;
    s.erases = d.u64()?;
    s.gc_runs = d.u64()?;
    s.gc_migrated_pages = d.u64()?;
    s.promotions = d.u64()?;
    s.demotions = d.u64()?;
    s.reduced_reads = d.u64()?;
    let n = d.len()?;
    s.reads_by_sensing_level = (0..n).map(|_| d.u64()).collect::<Result<_, _>>()?;
    s.total_response_us = d.f64()?;
    s.read_response_us = d.f64()?;
    s.max_response_us = d.f64()?;
    let n = d.len()?;
    s.response_samples = (0..n).map(|_| d.f64()).collect::<Result<_, _>>()?;
    s.responses_seen = d.u64()?;
    s.sample_state = d.u64()?;
    s.makespan_us = d.f64()?;
    s.retry_reads = d.u64()?;
    s.recovered_reads = d.u64()?;
    s.uncorrectable_reads = d.u64()?;
    let n = d.len()?;
    s.retry_depth_histogram = (0..n).map(|_| d.u64()).collect::<Result<_, _>>()?;
    s.program_failures = d.u64()?;
    s.retired_blocks = d.u64()?;
    s.die_resets = d.u64()?;
    s.scrub_runs = d.u64()?;
    s.scrub_reads = d.u64()?;
    s.scrub_refreshes = d.u64()?;
    s.recovery_latency_us = d.f64()?;
    s.stage_sense = decode_stage(d)?;
    s.stage_transfer = decode_stage(d)?;
    s.stage_decode = decode_stage(d)?;
    s.stage_program = decode_stage(d)?;
    s.stage_erase = decode_stage(d)?;
    if d.len()? != 0 {
        return Err(ImageError::Corrupt("tenanted stats in device image"));
    }
    s.journal_replayed = d.u64()?;
    s.torn_pages_discarded = d.u64()?;
    s.checkpoint_age_requests = d.u64()?;
    Ok(s)
}

fn encode_record(e: &mut Enc, r: &JournalRecord) {
    match *r {
        JournalRecord::Write {
            lpn,
            block,
            page,
            mode,
        } => {
            e.u8(1);
            e.u64(lpn);
            e.u32(block.0);
            e.u32(page);
            e.u8(match mode {
                CellMode::Normal => 0,
                CellMode::Reduced => 1,
            });
        }
        JournalRecord::Invalidate { lpn } => {
            e.u8(2);
            e.u64(lpn);
        }
        JournalRecord::Map { lpn, block, page } => {
            e.u8(3);
            e.u64(lpn);
            e.u32(block.0);
            e.u32(page);
        }
        JournalRecord::Erase { block } => {
            e.u8(4);
            e.u32(block.0);
        }
        JournalRecord::Retire { block } => {
            e.u8(5);
            e.u32(block.0);
        }
        JournalRecord::Commit { request } => {
            e.u8(6);
            e.u64(request);
        }
    }
}

fn decode_record(d: &mut Dec<'_>) -> Result<JournalRecord, ImageError> {
    Ok(match d.u8()? {
        1 => JournalRecord::Write {
            lpn: d.u64()?,
            block: BlockId(d.u32()?),
            page: d.u32()?,
            mode: match d.u8()? {
                0 => CellMode::Normal,
                1 => CellMode::Reduced,
                _ => return Err(ImageError::Corrupt("cell mode out of range")),
            },
        },
        2 => JournalRecord::Invalidate { lpn: d.u64()? },
        3 => JournalRecord::Map {
            lpn: d.u64()?,
            block: BlockId(d.u32()?),
            page: d.u32()?,
        },
        4 => JournalRecord::Erase {
            block: BlockId(d.u32()?),
        },
        5 => JournalRecord::Retire {
            block: BlockId(d.u32()?),
        },
        6 => JournalRecord::Commit { request: d.u64()? },
        _ => return Err(ImageError::Corrupt("unknown journal record tag")),
    })
}

impl DeviceImage {
    /// Serializes the image to its versioned binary form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Enc::new();
        e.buf.extend_from_slice(IMAGE_MAGIC);
        e.u16(IMAGE_VERSION);
        e.u64(self.config_fingerprint);
        e.u64(self.trace_fingerprint);
        e.u64(self.request_cursor);
        // FTL image.
        let ftl = &self.ftl;
        e.u32(ftl.blocks);
        e.u32(ftl.pages_per_block);
        e.u32(ftl.page_bytes);
        e.u32(ftl.over_provisioning_pct);
        e.u32(ftl.gc_low_watermark);
        e.u8(match ftl.gc_policy {
            GcPolicy::Greedy => 0,
            GcPolicy::WearAware => 1,
        });
        e.len(ftl.block_states.len());
        for b in &ftl.block_states {
            e.u8(match b.mode {
                CellMode::Normal => 0,
                CellMode::Reduced => 1,
            });
            e.u32(b.frontier);
            e.u32(b.valid);
            e.u32(b.erases);
            e.bool(b.retired);
            e.len(b.slots.len());
            for slot in &b.slots {
                match slot {
                    Some(lpn) => {
                        e.u8(1);
                        e.u64(*lpn);
                    }
                    None => e.u8(0),
                }
            }
        }
        e.len(ftl.free.len());
        for &b in &ftl.free {
            e.u32(b);
        }
        for f in &ftl.frontier {
            match f {
                Some(b) => {
                    e.u8(1);
                    e.u32(*b);
                }
                None => e.u8(0),
            }
        }
        // Buffer.
        e.len(self.buffer.len());
        for &(seq, lpn) in &self.buffer {
            e.u64(seq);
            e.u64(lpn);
        }
        e.u64(self.buffer_next_seq);
        // Reliability accumulators.
        e.len(self.ages.len());
        for &(lpn, age) in &self.ages {
            e.u64(lpn);
            e.f64(age);
        }
        for &s in &self.age_rng {
            e.u64(s);
        }
        // AccessEval.
        match &self.access_eval {
            Some(snap) => {
                e.u8(1);
                e.len(snap.read_counts.len());
                for &(lpn, count) in &snap.read_counts {
                    e.u64(lpn);
                    e.u32(count);
                }
                e.u64(snap.reads_since_aging);
                e.len(snap.pool.len());
                for &(seq, lpn) in &snap.pool {
                    e.u64(seq);
                    e.u64(lpn);
                }
                e.u64(snap.pool_next_seq);
                e.u64(snap.stats.reads);
                e.u64(snap.stats.reduced_hits);
                e.u64(snap.stats.promotions);
                e.u64(snap.stats.demotions);
            }
            None => e.u8(0),
        }
        // Fault counters.
        match &self.fault_counters {
            Some(counters) => {
                e.u8(1);
                e.len(counters.len());
                for &(tag, lpn, count) in counters {
                    e.u64(tag);
                    e.u64(lpn);
                    e.u64(count);
                }
            }
            None => e.u8(0),
        }
        // Read-disturb counters.
        match &self.disturb {
            Some(disturb) => {
                e.u8(1);
                e.len(disturb.len());
                for &(lpn, reads) in disturb {
                    e.u64(lpn);
                    e.u64(reads);
                }
            }
            None => e.u8(0),
        }
        encode_stats(&mut e, &self.stats);
        e.u64(self.host_pages_written);
        e.u64(self.scrub_countdown);
        e.u32(self.scrub_cursor);
        e.len(self.channel_free_at.len());
        for &t in &self.channel_free_at {
            e.f64(t);
        }
        // Journal + crash markers.
        e.len(self.journal.len());
        for r in &self.journal {
            encode_record(&mut e, r);
        }
        match &self.torn {
            Some(t) => {
                e.u8(1);
                e.u32(t.block.0);
                e.u32(t.page);
            }
            None => e.u8(0),
        }
        match self.crashed_at {
            Some(at) => {
                e.u8(1);
                e.u64(at);
            }
            None => e.u8(0),
        }
        match &self.series {
            Some(s) => {
                e.u8(1);
                e.u64(s.interval_us);
                e.u64(s.window);
                e.len(s.last.len());
                for &v in &s.last {
                    e.u64(v);
                }
                e.len(s.snapshots.len());
                for snap in &s.snapshots {
                    e.u64(snap.window);
                    e.f64(snap.t_us);
                    e.len(snap.cumulative.len());
                    for &v in &snap.cumulative {
                        e.u64(v);
                    }
                    e.len(snap.delta.len());
                    for &v in &snap.delta {
                        e.u64(v);
                    }
                    e.len(snap.gauges.len());
                    for &v in &snap.gauges {
                        e.f64(v);
                    }
                }
            }
            None => e.u8(0),
        }
        e.buf
    }

    /// Decodes an image, verifying magic, version and structure.
    ///
    /// # Errors
    ///
    /// Any [`ImageError`]; truncated or corrupted input never panics.
    pub fn from_bytes(data: &[u8]) -> Result<DeviceImage, ImageError> {
        let mut d = Dec::new(data);
        if d.take(4)? != IMAGE_MAGIC {
            return Err(ImageError::BadMagic);
        }
        let version = d.u16()?;
        if version == 0 || version > IMAGE_VERSION {
            return Err(ImageError::BadVersion(version));
        }
        let config_fingerprint = d.u64()?;
        let trace_fingerprint = d.u64()?;
        let request_cursor = d.u64()?;
        let blocks = d.u32()?;
        let pages_per_block = d.u32()?;
        let page_bytes = d.u32()?;
        let over_provisioning_pct = d.u32()?;
        let gc_low_watermark = d.u32()?;
        let gc_policy = match d.u8()? {
            0 => GcPolicy::Greedy,
            1 => GcPolicy::WearAware,
            _ => return Err(ImageError::Corrupt("gc policy out of range")),
        };
        let n = d.len()?;
        let mut block_states = Vec::with_capacity(n);
        for _ in 0..n {
            let mode = match d.u8()? {
                0 => CellMode::Normal,
                1 => CellMode::Reduced,
                _ => return Err(ImageError::Corrupt("cell mode out of range")),
            };
            let frontier = d.u32()?;
            let valid = d.u32()?;
            let erases = d.u32()?;
            let retired = d.bool()?;
            let slots = d.len()?;
            let slots = (0..slots)
                .map(|_| {
                    Ok(match d.u8()? {
                        0 => None,
                        1 => Some(d.u64()?),
                        _ => return Err(ImageError::Corrupt("slot presence out of range")),
                    })
                })
                .collect::<Result<Vec<_>, ImageError>>()?;
            block_states.push(BlockImage {
                mode,
                frontier,
                valid,
                erases,
                retired,
                slots,
            });
        }
        let n = d.len()?;
        let free = (0..n).map(|_| d.u32()).collect::<Result<Vec<_>, _>>()?;
        let mut frontier = [None, None];
        for f in &mut frontier {
            *f = match d.u8()? {
                0 => None,
                1 => Some(d.u32()?),
                _ => return Err(ImageError::Corrupt("frontier presence out of range")),
            };
        }
        let ftl = FtlImage {
            blocks,
            pages_per_block,
            page_bytes,
            over_provisioning_pct,
            gc_low_watermark,
            gc_policy,
            block_states,
            free,
            frontier,
        };
        let n = d.len()?;
        let buffer = (0..n)
            .map(|_| Ok((d.u64()?, d.u64()?)))
            .collect::<Result<Vec<_>, ImageError>>()?;
        let buffer_next_seq = d.u64()?;
        let n = d.len()?;
        let ages = (0..n)
            .map(|_| Ok((d.u64()?, d.f64()?)))
            .collect::<Result<Vec<_>, ImageError>>()?;
        let mut age_rng = [0u64; 4];
        for s in &mut age_rng {
            *s = d.u64()?;
        }
        let access_eval = match d.u8()? {
            0 => None,
            1 => {
                let n = d.len()?;
                let read_counts = (0..n)
                    .map(|_| Ok((d.u64()?, d.u32()?)))
                    .collect::<Result<Vec<_>, ImageError>>()?;
                let reads_since_aging = d.u64()?;
                let n = d.len()?;
                let pool = (0..n)
                    .map(|_| Ok((d.u64()?, d.u64()?)))
                    .collect::<Result<Vec<_>, ImageError>>()?;
                let pool_next_seq = d.u64()?;
                let stats = flexlevel::AccessEvalStats {
                    reads: d.u64()?,
                    reduced_hits: d.u64()?,
                    promotions: d.u64()?,
                    demotions: d.u64()?,
                };
                Some(AccessEvalSnapshot {
                    read_counts,
                    reads_since_aging,
                    pool,
                    pool_next_seq,
                    stats,
                })
            }
            _ => return Err(ImageError::Corrupt("access-eval presence out of range")),
        };
        let fault_counters = match d.u8()? {
            0 => None,
            1 => {
                let n = d.len()?;
                Some(
                    (0..n)
                        .map(|_| Ok((d.u64()?, d.u64()?, d.u64()?)))
                        .collect::<Result<Vec<_>, ImageError>>()?,
                )
            }
            _ => return Err(ImageError::Corrupt("fault-counter presence out of range")),
        };
        let disturb = match d.u8()? {
            0 => None,
            1 => {
                let n = d.len()?;
                Some(
                    (0..n)
                        .map(|_| Ok((d.u64()?, d.u64()?)))
                        .collect::<Result<Vec<_>, ImageError>>()?,
                )
            }
            _ => return Err(ImageError::Corrupt("disturb presence out of range")),
        };
        let stats = decode_stats(&mut d)?;
        let host_pages_written = d.u64()?;
        let scrub_countdown = d.u64()?;
        let scrub_cursor = d.u32()?;
        let n = d.len()?;
        let channel_free_at = (0..n).map(|_| d.f64()).collect::<Result<Vec<_>, _>>()?;
        let n = d.len()?;
        let journal = (0..n)
            .map(|_| decode_record(&mut d))
            .collect::<Result<Vec<_>, _>>()?;
        let torn = match d.u8()? {
            0 => None,
            1 => Some(TornPage {
                block: BlockId(d.u32()?),
                page: d.u32()?,
            }),
            _ => return Err(ImageError::Corrupt("torn presence out of range")),
        };
        let crashed_at = match d.u8()? {
            0 => None,
            1 => Some(d.u64()?),
            _ => return Err(ImageError::Corrupt("crash presence out of range")),
        };
        let series = if version < 2 {
            None
        } else {
            match d.u8()? {
                0 => None,
                1 => {
                    let interval_us = d.u64()?;
                    let window = d.u64()?;
                    let n = d.len()?;
                    let last = (0..n).map(|_| d.u64()).collect::<Result<Vec<_>, _>>()?;
                    let n = d.len()?;
                    let snapshots = (0..n)
                        .map(|_| {
                            let window = d.u64()?;
                            let t_us = d.f64()?;
                            let n = d.len()?;
                            let cumulative =
                                (0..n).map(|_| d.u64()).collect::<Result<Vec<_>, _>>()?;
                            let n = d.len()?;
                            let delta = (0..n).map(|_| d.u64()).collect::<Result<Vec<_>, _>>()?;
                            let n = d.len()?;
                            let gauges = (0..n).map(|_| d.f64()).collect::<Result<Vec<_>, _>>()?;
                            Ok(obs::SeriesSnapshot {
                                window,
                                t_us,
                                cumulative,
                                delta,
                                gauges,
                            })
                        })
                        .collect::<Result<Vec<_>, ImageError>>()?;
                    Some(obs::SeriesState {
                        interval_us,
                        window,
                        last,
                        snapshots,
                    })
                }
                _ => return Err(ImageError::Corrupt("series presence out of range")),
            }
        };
        d.done()?;
        Ok(DeviceImage {
            config_fingerprint,
            trace_fingerprint,
            request_cursor,
            ftl,
            buffer,
            buffer_next_seq,
            ages,
            age_rng,
            access_eval,
            fault_counters,
            disturb,
            stats,
            host_pages_written,
            scrub_countdown,
            scrub_cursor,
            channel_free_at,
            journal,
            torn,
            crashed_at,
            series,
        })
    }

    /// Checks the image against the trace about to drive the resume; a
    /// `trace_fingerprint` of `0` means the image is not tied to any
    /// trace and always passes.
    ///
    /// # Errors
    ///
    /// [`ImageError::TraceMismatch`] if the image was checkpointed
    /// against a different trace.
    pub fn verify_trace(&self, trace: &Trace) -> Result<(), ImageError> {
        if self.trace_fingerprint == 0 {
            return Ok(());
        }
        let expected = trace_fingerprint(trace);
        if self.trace_fingerprint != expected {
            return Err(ImageError::TraceMismatch {
                expected,
                found: self.trace_fingerprint,
            });
        }
        Ok(())
    }

    /// Writes the image to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O failure from the filesystem.
    pub fn save<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Reads an image from `path`; decode failures map to
    /// [`std::io::ErrorKind::InvalidData`], mirroring `workloads::codec`.
    ///
    /// # Errors
    ///
    /// I/O failures, or `InvalidData` wrapping the [`ImageError`].
    pub fn load<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<DeviceImage> {
        let data = std::fs::read(path)?;
        DeviceImage::from_bytes(&data)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FACTORS: (f64, f64, f64) = (0.3, 0.25, 0.1);

    fn run(u: f64, fer0: f64, levels: u32) -> RecoveryOutcome {
        resolve(u, fer0, levels, 6, FACTORS.0, FACTORS.1, FACTORS.2)
    }

    #[test]
    fn shallow_fault_recovers_on_the_vref_rung() {
        // u just below fer0 but above fer0 × retry_factor: one re-read.
        let out = run(5e-3, 1e-2, 4);
        assert!(out.recovered);
        assert_eq!(out.depth(), 1);
        assert_eq!(out.rungs[0].levels, 4, "same depth, shifted references");
    }

    #[test]
    fn deeper_faults_climb_monotonically() {
        let out = run(1e-4, 1e-2, 3);
        assert!(out.recovered);
        assert!(out.depth() >= 2);
        // Sensing depth never decreases along the ladder.
        assert!(out.rungs.windows(2).all(|w| w[0].levels <= w[1].levels));
        // Rung FERs strictly decrease (factors < 1).
        assert!(out.rungs.windows(2).all(|w| w[0].fer > w[1].fer));
    }

    #[test]
    fn hopeless_draw_is_uncorrectable_at_max_depth() {
        let out = run(0.0, 1e-2, 2);
        assert!(!out.recovered);
        assert_eq!(out.depth(), max_depth(2, 6));
        assert_eq!(out.rungs.last().unwrap().levels, 6);
    }

    #[test]
    fn ladder_from_full_depth_has_two_rungs() {
        // A read already at max sensing can only Vref-retry and deep-cal.
        assert_eq!(max_depth(6, 6), 2);
        let out = run(0.0, 1e-2, 6);
        assert_eq!(out.depth(), 2);
        assert!(out.rungs.iter().all(|r| r.levels == 6));
    }

    #[test]
    fn depth_is_monotone_in_the_draw() {
        // Smaller u (a worse fault) never yields a shallower ladder.
        let mut prev = 0;
        for u in [9e-3, 2e-3, 4e-4, 1e-5, 1e-8, 0.0] {
            let d = run(u, 1e-2, 0).depth();
            assert!(d >= prev, "u={u}: depth {d} < {prev}");
            prev = d;
        }
        assert_eq!(prev, max_depth(0, 6));
    }

    #[test]
    fn degenerate_factors_are_clamped() {
        // Zero/negative factors must not freeze the ladder at fer 0-division
        // weirdness; they clamp to a tiny positive value, so the first
        // rung recovers anything with u > 0.
        let out = resolve(1e-300, 1.0, 0, 6, 0.0, -1.0, 0.0);
        assert!(out.recovered);
        assert_eq!(out.depth(), 1);
        // And a factor > 1 cannot make rungs *worse* than the last.
        let out = resolve(5e-3, 1e-2, 5, 6, 7.0, 7.0, 7.0);
        assert!(out.rungs.windows(2).all(|w| w[0].fer >= w[1].fer));
    }

    #[test]
    fn resolved_outcome_is_pure() {
        let a = run(3e-4, 8e-3, 1);
        let b = run(3e-4, 8e-3, 1);
        assert_eq!(a, b);
    }
}

#[cfg(test)]
mod image_tests {
    use super::*;
    use crate::config::{Scheme, SsdConfig};
    use crate::sim::SsdSimulator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use workloads::WorkloadSpec;

    fn checkpointed(scheme: Scheme) -> (SsdConfig, Trace, DeviceImage) {
        let trace = WorkloadSpec::fin2()
            .with_requests(600)
            .with_footprint(1_200)
            .generate(&mut StdRng::seed_from_u64(11));
        let config = SsdConfig::scaled(scheme, 64).with_seed(3);
        let mut sim = SsdSimulator::new(config.clone());
        sim.run_prefix(&trace, 300).expect("prefix runs");
        let mut image = sim.checkpoint().expect("checkpoint");
        image.trace_fingerprint = trace_fingerprint(&trace);
        (config, trace, image)
    }

    #[test]
    fn image_round_trips_bit_identically() {
        for scheme in [Scheme::Baseline, Scheme::FlexLevel] {
            let (_, _, image) = checkpointed(scheme);
            let bytes = image.to_bytes();
            let back = DeviceImage::from_bytes(&bytes).expect("decodes");
            assert_eq!(back, image);
            assert_eq!(back.to_bytes(), bytes, "re-encoding must be stable");
        }
    }

    #[test]
    fn every_truncation_fails_typed() {
        let (_, _, image) = checkpointed(Scheme::FlexLevel);
        let bytes = image.to_bytes();
        // Every strict prefix must produce an error, never a panic and
        // never a bogus image. Stride keeps the sweep fast; the edges
        // (empty, header, one-short) are hit explicitly.
        let edges = [0, 1, 3, IMAGE_MAGIC.len(), bytes.len() - 1];
        for len in (0..bytes.len()).step_by(131).chain(edges) {
            assert!(
                DeviceImage::from_bytes(&bytes[..len]).is_err(),
                "prefix of {len} bytes decoded"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let (_, _, image) = checkpointed(Scheme::Baseline);
        let mut bytes = image.to_bytes();
        bytes.push(0);
        assert_eq!(
            DeviceImage::from_bytes(&bytes),
            Err(ImageError::Corrupt("trailing bytes"))
        );
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let (_, _, image) = checkpointed(Scheme::Baseline);
        let mut bytes = image.to_bytes();
        bytes[0] ^= 0xFF;
        assert_eq!(DeviceImage::from_bytes(&bytes), Err(ImageError::BadMagic));
        let mut bytes = image.to_bytes();
        bytes[4] = 0x7F;
        assert!(matches!(
            DeviceImage::from_bytes(&bytes),
            Err(ImageError::BadVersion(_))
        ));
    }

    #[test]
    fn corrupted_bytes_never_panic() {
        let (_, _, image) = checkpointed(Scheme::FlexLevel);
        let bytes = image.to_bytes();
        let mut state = 0x5EED_CAFE_u64;
        for _ in 0..256 {
            let mut mutated = bytes.clone();
            let r = crate::faults::splitmix64(&mut state);
            let index = (r as usize) % mutated.len();
            mutated[index] ^= (1 << ((r >> 48) % 8)) as u8;
            // Either a typed error or a (different or identical) image —
            // the decoder must stay total.
            let _ = DeviceImage::from_bytes(&mutated);
        }
    }

    #[test]
    fn verify_trace_distinguishes_traces() {
        let (_, trace, image) = checkpointed(Scheme::Baseline);
        assert_eq!(image.verify_trace(&trace), Ok(()));
        let other = WorkloadSpec::fin2()
            .with_requests(600)
            .with_footprint(1_200)
            .generate(&mut StdRng::seed_from_u64(12));
        assert!(matches!(
            image.verify_trace(&other),
            Err(ImageError::TraceMismatch { .. })
        ));
        let mut untied = image.clone();
        untied.trace_fingerprint = 0;
        assert_eq!(untied.verify_trace(&other), Ok(()));
    }

    #[test]
    fn save_load_round_trips_via_disk() {
        let (_, _, image) = checkpointed(Scheme::Baseline);
        let path = std::env::temp_dir().join("flexlevel_image_roundtrip.bin");
        image.save(&path).expect("save");
        let back = DeviceImage::load(&path).expect("load");
        let _ = std::fs::remove_file(&path);
        assert_eq!(back, image);
    }
}
