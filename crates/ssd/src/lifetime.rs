//! Device lifetime model (paper Figure 7(c)).
//!
//! FlexLevel's migrations raise the erase rate, but the mechanism only
//! engages once the BER is high enough to trigger extra sensing levels —
//! Table 5 shows that happens beyond ≈4000 P/E cycles. Below that
//! threshold FlexLevel behaves exactly like LDPC-in-SSD, so only the tail
//! of the device's life wears faster. The paper reports an average
//! lifetime reduction of just 6 % despite a 13 % erase increase.

use serde::{Deserialize, Serialize};

/// Lifetime model parameters.
///
/// ```
/// use ssd::LifetimeModel;
///
/// let m = LifetimeModel::paper();
/// // A 13% erase increase over the engaged tail costs only a few
/// // percent of total lifetime (the Figure 7(c) argument).
/// assert!(m.lifetime_reduction(1.13) < 0.10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifetimeModel {
    /// Total endurance in P/E cycles.
    pub endurance: u32,
    /// Wear level at which FlexLevel starts migrating (Table 5: extra
    /// sensing levels appear beyond ≈4000 P/E).
    pub engage_pe: u32,
}

impl LifetimeModel {
    /// The paper's setting: 6000-cycle endurance, engagement at 4000.
    pub fn paper() -> LifetimeModel {
        LifetimeModel {
            endurance: 6000,
            engage_pe: 4000,
        }
    }

    /// Relative lifetime of a device whose erase rate is multiplied by
    /// `erase_increase` (≥ 1) during the engaged phase, versus a device
    /// that never engages.
    ///
    /// With erase rate `r` before engagement and `r·f` after, time to
    /// exhaust the endurance `E` from an engagement point `A` is
    /// `A/r + (E−A)/(r·f)`, so the ratio to `E/r` is
    /// `(A + (E−A)/f) / E`.
    ///
    /// # Panics
    ///
    /// Panics if `erase_increase < 1` or `engage_pe > endurance`.
    pub fn relative_lifetime(&self, erase_increase: f64) -> f64 {
        assert!(
            erase_increase >= 1.0,
            "erase increase must be ≥ 1, got {erase_increase}"
        );
        assert!(
            self.engage_pe <= self.endurance,
            "engagement beyond endurance"
        );
        let engaged = (self.endurance - self.engage_pe) as f64;
        (self.engage_pe as f64 + engaged / erase_increase) / self.endurance as f64
    }

    /// Lifetime reduction fraction (`1 − relative_lifetime`).
    pub fn lifetime_reduction(&self, erase_increase: f64) -> f64 {
        1.0 - self.relative_lifetime(erase_increase)
    }
}

impl Default for LifetimeModel {
    fn default() -> LifetimeModel {
        LifetimeModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_increase_full_lifetime() {
        let m = LifetimeModel::paper();
        assert!((m.relative_lifetime(1.0) - 1.0).abs() < 1e-12);
        assert_eq!(m.lifetime_reduction(1.0), 0.0);
    }

    #[test]
    fn paper_magnitude() {
        // A 13% erase increase engaged over the last third of life costs
        // only a few percent of lifetime — the Figure 7(c) claim.
        let m = LifetimeModel::paper();
        let reduction = m.lifetime_reduction(1.13);
        assert!(
            (0.02..0.10).contains(&reduction),
            "reduction {reduction} should be single-digit percent"
        );
    }

    #[test]
    fn earlier_engagement_hurts_more() {
        let late = LifetimeModel {
            endurance: 6000,
            engage_pe: 5000,
        };
        let early = LifetimeModel {
            endurance: 6000,
            engage_pe: 1000,
        };
        assert!(early.lifetime_reduction(1.2) > late.lifetime_reduction(1.2));
    }

    #[test]
    fn monotone_in_erase_increase() {
        let m = LifetimeModel::paper();
        assert!(m.lifetime_reduction(1.3) > m.lifetime_reduction(1.1));
    }

    #[test]
    #[should_panic(expected = "must be ≥ 1")]
    fn rejects_decrease() {
        let _ = LifetimeModel::paper().relative_lifetime(0.9);
    }
}
