//! Deterministic fault injection for the SSD simulator.
//!
//! Real controllers at the paper's stress point (raw BER ≈ 1e-2 at
//! 6000 P/E) do not live on the success path: frames fail to decode and
//! are re-read, programs fail status checks and blocks grow bad, dies
//! glitch and need resets. This module injects those faults
//! *deterministically*, under the same discipline as
//! `reliability::mc` — every draw comes from a counter-derived
//! SplitMix64 stream keyed by `(fault seed, stream kind, lpn, per-page
//! access index)`, so the outcome is a pure function of the configuration
//! and the logical access sequence, never of thread count, timing model
//! or scheduler.
//!
//! The read-fault model is anchored in the paper's Equation 1 (see
//! [`reliability::EccConfig`]): the controller provisions a correction
//! budget `k(L)` per sensing depth `L` so a frame at its class-boundary
//! BER fails with probability [`FaultConfig::frame_target`]. Because raw
//! bit errors in real NAND are correlated (they cluster along wordlines),
//! the iid binomial tail of Equation 1 is far too sharp to be used
//! directly — a fixed budget would make frame failure a step function of
//! BER. The model therefore evaluates the survival function on a
//! cluster-scaled code ([`FaultConfig::cluster`] raw bits per independent
//! error event), which widens the transition region to the gradual FER
//! ramp measured on real parts while keeping the Equation-1 machinery.
//!
//! Fault injection defaults **off**; a disabled [`FaultConfig`] leaves
//! every golden counter and published number untouched.

use std::collections::HashMap;

use ldpc::SensingSchedule;
use reliability::EccConfig;
use serde::{Deserialize, Serialize};

/// Configuration of the fault-injection subsystem. Disabled by default;
/// every probability below is exercised only when `enabled` is set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Master switch; `false` (the default) injects nothing and draws
    /// nothing, keeping all golden counters bit-identical.
    pub enabled: bool,
    /// Seed of the per-page fault streams (independent of the data-age
    /// seed so fault and age randomness never alias).
    pub seed: u64,
    /// Multiplier on the initial frame-error rate — an accelerated-aging
    /// knob for short traces (`1.0` = the calibrated model).
    pub scale: f64,
    /// Frame-error probability of a read whose raw BER sits exactly at
    /// its sensing-class boundary: the residual failure rate the
    /// controller provisions for before the retry ladder.
    pub frame_target: f64,
    /// Raw bits per correlated error event; widens the Equation-1
    /// binomial transition to a realistic FER ramp (see module docs).
    pub cluster: u64,
    /// FER multiplier per progressive soft-sensing escalation rung.
    pub escalate_fer_factor: f64,
    /// FER multiplier of the final deep-calibration rung (per-die optimal
    /// shift search, beyond the discrete retry table).
    pub final_fer_factor: f64,
    /// Probability a page program fails its status check, retiring the
    /// block as grown-bad.
    pub program_fail_prob: f64,
    /// Probability a flash read hits a transient whole-die fault needing
    /// a reset before data can be sensed.
    pub die_fault_prob: f64,
    /// Time one die reset stalls the plane (µs).
    pub die_reset_us: f64,
    /// Host requests between patrol-scrub block visits (`0` disables the
    /// scrubber even with faults enabled).
    pub scrub_interval: u64,
    /// Modeled retention BER at which the scrubber refreshes (rewrites)
    /// a page it patrols.
    pub scrub_refresh_ber: f64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            enabled: false,
            seed: 0xFA17_5EED,
            scale: 1.0,
            frame_target: 1e-2,
            cluster: 64,
            escalate_fer_factor: 0.25,
            final_fer_factor: 0.1,
            program_fail_prob: 2e-4,
            die_fault_prob: 5e-5,
            die_reset_us: 2_000.0,
            scrub_interval: 500,
            scrub_refresh_ber: 8e-3,
        }
    }
}

impl FaultConfig {
    /// The default fault model with injection switched on.
    pub fn enabled() -> FaultConfig {
        FaultConfig {
            enabled: true,
            ..FaultConfig::default()
        }
    }

    /// Sets the fault-stream seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> FaultConfig {
        self.seed = seed;
        self
    }

    /// Sets the FER acceleration multiplier.
    #[must_use]
    pub fn with_scale(mut self, scale: f64) -> FaultConfig {
        self.scale = scale.max(0.0);
        self
    }

    /// Sets the program-status failure probability.
    #[must_use]
    pub fn with_program_fail_prob(mut self, p: f64) -> FaultConfig {
        self.program_fail_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the transient die-fault probability per flash read.
    #[must_use]
    pub fn with_die_fault_prob(mut self, p: f64) -> FaultConfig {
        self.die_fault_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Sets the patrol-scrub visit interval in host requests.
    #[must_use]
    pub fn with_scrub_interval(mut self, requests: u64) -> FaultConfig {
        self.scrub_interval = requests;
        self
    }
}

/// Which independent per-page stream a draw comes from. Each stream has
/// its own counter, so interleaving (a scrub read between two host
/// reads, say) never shifts another stream's sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum StreamKind {
    /// Frame-decode outcome of a flash read.
    Read,
    /// Transient die fault on a flash read.
    Die,
    /// Program-status outcome of a page program.
    Program,
}

impl StreamKind {
    fn tag(self) -> u64 {
        match self {
            StreamKind::Read => 0x1D,
            StreamKind::Die => 0x2E,
            StreamKind::Program => 0x3F,
        }
    }
}

/// One step of the SplitMix64 generator (shared with the scenario
/// engine's placement draws, so every scenario stream reuses the same
/// counter-derived keying discipline).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` from the `(seed, kind, lpn, counter)` cell
/// of the fault stream — stateless, so any access order reproduces it.
fn stream_unit(seed: u64, kind: StreamKind, lpn: u64, counter: u64) -> f64 {
    let mut state = seed
        ^ kind.tag().wrapping_mul(0xA24B_AED4_963E_E407)
        ^ lpn.wrapping_mul(0x9FB2_1C65_1E98_DF25)
        ^ counter.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    let _ = splitmix64(&mut state);
    let z = splitmix64(&mut state);
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Runtime state of the fault injector: the calibrated Equation-1
/// correction budgets, per-page stream counters, and an FER cache.
#[derive(Debug)]
pub struct FaultState {
    config: FaultConfig,
    /// Cluster-scaled code the FER survival function is evaluated on.
    cluster_code: EccConfig,
    /// Correction budget (cluster events) per sensing depth, calibrated
    /// so the class-boundary BER fails at `frame_target`.
    correction: Vec<u64>,
    /// Relative FER improvement of one retry-table Vref-shift re-read,
    /// derived from [`reliability::read_retry`] at the device's stress
    /// point (the calibrated-over-nominal BER ratio).
    retry_fer_factor: f64,
    /// Per-`(kind, lpn)` access counters driving the streams.
    counters: HashMap<(u64, u64), u64>,
    /// FER memo keyed by `(BER bits, sensing depth)` — BER values come
    /// off the quantised reliability cache, so this stays small.
    fer_cache: HashMap<(u64, u32), f64>,
}

impl FaultState {
    /// Builds the injector for a sensing `schedule`. `retry_gain` is the
    /// calibrated-over-nominal BER ratio of the device's retry table at
    /// its stress point (see `ReliabilityState::retry_gain`); it becomes
    /// the FER improvement of the ladder's Vref-shift rung, clamped to a
    /// sane range.
    pub fn new(config: FaultConfig, schedule: &SensingSchedule, retry_gain: f64) -> FaultState {
        let paper = EccConfig::paper_ldpc();
        let cluster = config.cluster.max(1);
        let cluster_code = EccConfig {
            info_bits: (paper.info_bits / cluster).max(1),
            codeword_bits: (paper.codeword_bits / cluster).max(2),
        };
        let thresholds = schedule.thresholds();
        let max_levels = schedule.max_extra_levels();
        // Frame target expressed as the UBER Equation 1 computes
        // (failures per information bit of the cluster-scaled code).
        let target_uber = config.frame_target.clamp(1e-12, 1.0) / cluster_code.info_bits as f64;
        let correction = (0..=max_levels)
            .map(|level| {
                let boundary = match thresholds.get(level as usize) {
                    Some(&t) => t,
                    // The top class has no upper threshold: provision for
                    // moderately-past-worst data so the most stressed
                    // cells sit near (not over) the failure knee.
                    None => thresholds.last().copied().unwrap_or(1e-2) * 1.5,
                };
                cluster_code
                    .required_correction(boundary.clamp(0.0, 1.0), target_uber)
                    .unwrap_or(cluster_code.codeword_bits)
            })
            .collect();
        FaultState {
            retry_fer_factor: retry_gain.clamp(0.02, 0.5),
            config,
            cluster_code,
            correction,
            counters: HashMap::new(),
            fer_cache: HashMap::new(),
        }
    }

    /// The configuration driving the injector.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// FER improvement factor of a Vref-shift re-read (ladder rung 1).
    pub fn retry_fer_factor(&self) -> f64 {
        self.retry_fer_factor
    }

    /// Clears the per-page counters and cache (used when the simulator
    /// resets for a measured run, so results do not depend on warmup).
    pub fn reset(&mut self) {
        self.counters.clear();
    }

    fn draw(&mut self, kind: StreamKind, lpn: u64) -> f64 {
        let counter = self.counters.entry((kind.tag(), lpn)).or_insert(0);
        let index = *counter;
        *counter += 1;
        stream_unit(self.config.seed, kind, lpn, index)
    }

    /// Uniform draw deciding the decode outcome of `lpn`'s next read.
    pub fn read_draw(&mut self, lpn: u64) -> f64 {
        self.draw(StreamKind::Read, lpn)
    }

    /// Uniform draw deciding whether `lpn`'s next read hits a transient
    /// die fault.
    pub fn die_draw(&mut self, lpn: u64) -> f64 {
        self.draw(StreamKind::Die, lpn)
    }

    /// Uniform draw deciding the status of `lpn`'s next page program.
    pub fn program_draw(&mut self, lpn: u64) -> f64 {
        self.draw(StreamKind::Program, lpn)
    }

    /// Checkpoint view of the per-page stream counters as
    /// `(kind tag, lpn, count)` triples sorted by `(tag, lpn)`. The FER
    /// cache is pure memoisation and excluded.
    pub fn counters_snapshot(&self) -> Vec<(u64, u64, u64)> {
        let mut out: Vec<(u64, u64, u64)> = self
            .counters
            .iter()
            .map(|(&(tag, lpn), &count)| (tag, lpn, count))
            .collect();
        out.sort_unstable_by_key(|&(tag, lpn, _)| (tag, lpn));
        out
    }

    /// Restores the per-page stream counters captured by
    /// [`counters_snapshot`](Self::counters_snapshot).
    pub fn restore_counters(&mut self, counters: &[(u64, u64, u64)]) {
        self.counters = counters
            .iter()
            .map(|&(tag, lpn, count)| ((tag, lpn), count))
            .collect();
    }

    /// Initial frame-error rate of a read at raw BER `ber` sensed with
    /// `levels` extra soft levels (scaled by the acceleration knob,
    /// memoised per quantised BER).
    pub fn frame_error_rate(&mut self, ber: f64, levels: u32) -> f64 {
        let level = (levels as usize).min(self.correction.len().saturating_sub(1));
        let key = (ber.to_bits(), level as u32);
        if let Some(&fer) = self.fer_cache.get(&key) {
            return fer;
        }
        let p = ber.clamp(0.0, 1.0);
        let base =
            self.cluster_code.uber(self.correction[level], p) * self.cluster_code.info_bits as f64;
        let fer = (self.config.scale * base).clamp(0.0, 1.0);
        self.fer_cache.insert(key, fer);
        fer
    }
}

/// When a [`CrashPlan`] cuts power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CrashTrigger {
    /// Cut after the request with this zero-based logical index is
    /// served (the crash lands somewhere inside its journal records).
    OpIndex(u64),
    /// Cut at the first request whose arrival time reaches this many
    /// simulated microseconds.
    SimTimeUs(f64),
}

/// A seeded, deterministic sudden-power-off plan.
///
/// The *where-exactly* of the cut — which journal record is the last to
/// survive, and whether the in-flight program leaves a torn page — is
/// derived from `(seed, request index)` with the same SplitMix64
/// discipline as the fault streams, so a crash point is a pure function
/// of the plan and the logical request sequence, never of thread count
/// or timing backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashPlan {
    /// Seed of the cut-point derivation stream.
    pub seed: u64,
    /// When power is lost.
    pub trigger: CrashTrigger,
}

impl CrashPlan {
    /// Plan that cuts power after the request at zero-based `index`.
    pub fn at_request(seed: u64, index: u64) -> CrashPlan {
        CrashPlan {
            seed,
            trigger: CrashTrigger::OpIndex(index),
        }
    }

    /// Plan that cuts power at `us` simulated microseconds.
    pub fn at_time_us(seed: u64, us: f64) -> CrashPlan {
        CrashPlan {
            seed,
            trigger: CrashTrigger::SimTimeUs(us),
        }
    }

    /// Derives the exact cut inside the crashing request's journal
    /// window: given the journal length before and after the request was
    /// served, returns `(cut, torn)` — the number of journal records
    /// that survive (in `[records_before + 1, records_after]`, so the
    /// crash always lands inside the in-flight request) and whether the
    /// interrupted record additionally left a torn page. When the
    /// request appended nothing the cut degenerates to `records_before`.
    pub fn cut(
        &self,
        at_request: u64,
        records_before: usize,
        records_after: usize,
    ) -> (usize, bool) {
        if records_after <= records_before {
            return (records_before, false);
        }
        let mut state = self.seed ^ at_request.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        let _ = splitmix64(&mut state);
        let span = (records_after - records_before) as u64;
        let cut = records_before + 1 + (splitmix64(&mut state) % span) as usize;
        let torn = splitmix64(&mut state) & 1 == 1;
        (cut, torn)
    }

    /// Seeded sweep of `n` crash points over a journal of `len` records:
    /// `(cut, torn)` pairs, each cut in `[0, len]`. Used by the
    /// crash-torture harness to cover prefixes of a recorded journal
    /// deterministically.
    pub fn sweep_points(seed: u64, n: usize, len: usize) -> Vec<(usize, bool)> {
        let mut state = seed;
        let _ = splitmix64(&mut state);
        (0..n)
            .map(|_| {
                let cut = (splitmix64(&mut state) % (len as u64 + 1)) as usize;
                let torn = splitmix64(&mut state) & 1 == 1;
                (cut, torn)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::derived_schedule;

    fn state(config: FaultConfig) -> FaultState {
        FaultState::new(config, &derived_schedule(), 0.3)
    }

    #[test]
    fn disabled_is_the_default() {
        let c = FaultConfig::default();
        assert!(!c.enabled);
        assert!(FaultConfig::enabled().enabled);
        let c = FaultConfig::enabled()
            .with_seed(9)
            .with_scale(2.0)
            .with_program_fail_prob(0.5)
            .with_die_fault_prob(0.25)
            .with_scrub_interval(100);
        assert_eq!((c.seed, c.scale), (9, 2.0));
        assert_eq!((c.program_fail_prob, c.die_fault_prob), (0.5, 0.25));
        assert_eq!(c.scrub_interval, 100);
    }

    #[test]
    fn streams_are_deterministic_and_independent() {
        let mut a = state(FaultConfig::enabled());
        let mut b = state(FaultConfig::enabled());
        // Same access sequence reproduces exactly.
        let seq_a: Vec<f64> = (0..32).map(|i| a.read_draw(i % 5)).collect();
        let seq_b: Vec<f64> = (0..32).map(|i| b.read_draw(i % 5)).collect();
        assert_eq!(seq_a, seq_b);
        // Interleaving another stream does not shift the read stream.
        let mut c = state(FaultConfig::enabled());
        let interleaved: Vec<f64> = (0..32)
            .map(|i| {
                let _ = c.program_draw(i % 5);
                let _ = c.die_draw(i % 3);
                c.read_draw(i % 5)
            })
            .collect();
        assert_eq!(seq_a, interleaved);
        // Different seeds decorrelate.
        let mut d = state(FaultConfig::enabled().with_seed(1));
        let seq_d: Vec<f64> = (0..32).map(|i| d.read_draw(i % 5)).collect();
        assert_ne!(seq_a, seq_d);
    }

    #[test]
    fn draws_are_uniform_units() {
        let mut s = state(FaultConfig::enabled());
        let draws: Vec<f64> = (0..10_000).map(|i| s.read_draw(i)).collect();
        assert!(draws.iter().all(|&u| (0.0..1.0).contains(&u)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn reset_replays_the_streams() {
        let mut s = state(FaultConfig::enabled());
        let first: Vec<f64> = (0..8).map(|_| s.read_draw(7)).collect();
        s.reset();
        let second: Vec<f64> = (0..8).map(|_| s.read_draw(7)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn fer_grows_with_ber_and_shrinks_with_sensing() {
        let mut s = state(FaultConfig::enabled());
        let low = s.frame_error_rate(1e-3, 0);
        let high = s.frame_error_rate(1.6e-2, 0);
        assert!(high > low, "FER must grow with BER: {low} vs {high}");
        let deep = s.frame_error_rate(1.6e-2, 6);
        assert!(deep < high, "more sensing must cut FER: {high} vs {deep}");
        assert!((0.0..=1.0).contains(&deep));
    }

    #[test]
    fn fer_at_class_boundary_is_near_target() {
        // The calibration contract: a read at its class-boundary BER
        // fails with roughly frame_target probability.
        let schedule = derived_schedule();
        let mut s = state(FaultConfig::enabled());
        for (level, &boundary) in schedule.thresholds().iter().enumerate() {
            let fer = s.frame_error_rate(boundary, level as u32);
            assert!(
                fer <= FaultConfig::default().frame_target * 1.5,
                "level {level} boundary FER {fer} overshoots"
            );
        }
    }

    #[test]
    fn scale_accelerates_faults() {
        let mut base = state(FaultConfig::enabled());
        let mut fast = state(FaultConfig::enabled().with_scale(10.0));
        let b = base.frame_error_rate(1.2e-2, 4);
        let f = fast.frame_error_rate(1.2e-2, 4);
        assert!(f > b, "scaled FER {f} must exceed base {b}");
        assert!(f <= 1.0);
    }

    #[test]
    fn retry_gain_is_clamped() {
        let s = FaultState::new(FaultConfig::enabled(), &derived_schedule(), 1e-6);
        assert_eq!(s.retry_fer_factor(), 0.02);
        let s = FaultState::new(FaultConfig::enabled(), &derived_schedule(), 3.0);
        assert_eq!(s.retry_fer_factor(), 0.5);
    }

    #[test]
    fn counter_snapshot_round_trips_the_streams() {
        let mut a = state(FaultConfig::enabled());
        for i in 0..16 {
            let _ = a.read_draw(i % 5);
            let _ = a.program_draw(i % 3);
        }
        let snap = a.counters_snapshot();
        // Sorted and deterministic.
        assert!(snap.windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)));
        let mut b = state(FaultConfig::enabled());
        b.restore_counters(&snap);
        // The restored injector continues the exact same streams.
        let next_a: Vec<f64> = (0..8).map(|i| a.read_draw(i % 5)).collect();
        let next_b: Vec<f64> = (0..8).map(|i| b.read_draw(i % 5)).collect();
        assert_eq!(next_a, next_b);
    }

    #[test]
    fn crash_cuts_are_deterministic_and_in_range() {
        let plan = CrashPlan::at_request(0xC4A5, 40);
        let (cut, torn) = plan.cut(40, 10, 18);
        assert_eq!((cut, torn), plan.cut(40, 10, 18));
        assert!((11..=18).contains(&cut));
        // No records appended: the cut degenerates, never torn.
        assert_eq!(plan.cut(40, 10, 10), (10, false));
        // Different request indices decorrelate.
        assert_ne!(plan.cut(41, 10, 18), plan.cut(42, 10, 18));
    }

    #[test]
    fn sweep_points_cover_the_journal() {
        let points = CrashPlan::sweep_points(0x5EED, 200, 1000);
        assert_eq!(points.len(), 200);
        assert_eq!(points, CrashPlan::sweep_points(0x5EED, 200, 1000));
        assert!(points.iter().all(|&(cut, _)| cut <= 1000));
        let distinct: std::collections::HashSet<usize> =
            points.iter().map(|&(cut, _)| cut).collect();
        assert!(
            distinct.len() > 100,
            "cuts should spread: {}",
            distinct.len()
        );
        assert!(points.iter().any(|&(_, torn)| torn));
        assert!(points.iter().any(|&(_, torn)| !torn));
    }
}
