//! Deterministic discrete-event queue for the pipelined timing model.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] that imposes a
//! *total* order on events: primary key is the firing time, secondary key
//! is the push sequence number. `f64` timestamps are compared with
//! [`f64::total_cmp`], so even exact ties (and the NaN/-0.0 corner cases
//! a buggy caller could produce) order identically on every platform and
//! every run — the property the simulator's bit-identical-replay contract
//! rests on. Same-time events therefore pop in push order (FIFO), which
//! the event loop exploits to keep logical state evolution independent of
//! heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use flash_model::Micros;

/// One scheduled event, as returned by [`EventQueue::pop`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event<T> {
    /// Firing time.
    pub time: Micros,
    /// Push sequence number (unique per queue, monotonically increasing).
    pub seq: u64,
    /// Caller payload.
    pub payload: T,
}

/// Heap entry; `Ord` is reversed so the `BinaryHeap` max-heap behaves as
/// a min-heap on `(time, seq)`.
#[derive(Debug)]
struct Entry<T> {
    time: Micros,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Entry<T>) -> bool {
        self.seq == other.seq && self.time.as_f64().total_cmp(&other.time.as_f64()).is_eq()
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Entry<T>) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Entry<T>) -> Ordering {
        // Reversed: the earliest (time, seq) must be the heap maximum.
        other
            .time
            .as_f64()
            .total_cmp(&self.time.as_f64())
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-queue of timed events with deterministic `(time, seq)` ordering.
///
/// ```
/// use flash_model::Micros;
/// use ssd::events::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.push(Micros(5.0), "late");
/// q.push(Micros(1.0), "early");
/// q.push(Micros(1.0), "early-but-second");
/// assert_eq!(q.pop().unwrap().payload, "early");
/// assert_eq!(q.pop().unwrap().payload, "early-but-second");
/// assert_eq!(q.pop().unwrap().payload, "late");
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    next_seq: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` events.
    pub fn with_capacity(capacity: usize) -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time`; returns its sequence number.
    /// Events pushed at the same time pop in push order.
    pub fn push(&mut self, time: Micros, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        seq
    }

    /// Removes and returns the earliest event, or `None` when empty.
    pub fn pop(&mut self) -> Option<Event<T>> {
        self.heap.pop().map(|e| Event {
            time: e.time,
            seq: e.seq,
            payload: e.payload,
        })
    }

    /// Firing time of the next event, without removing it.
    pub fn peek_time(&self) -> Option<Micros> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> EventQueue<T> {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[9.0, 2.0, 7.0, 1.0, 4.0] {
            q.push(Micros(t), t as u64);
        }
        let mut times = Vec::new();
        while let Some(ev) = q.pop() {
            times.push(ev.time.as_f64());
        }
        assert_eq!(times, vec![1.0, 2.0, 4.0, 7.0, 9.0]);
    }

    #[test]
    fn ties_pop_in_push_order() {
        let mut q = EventQueue::new();
        for i in 0..64u64 {
            q.push(Micros(10.0), i);
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(popped, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn interleaved_ties_keep_per_time_fifo() {
        let mut q = EventQueue::new();
        // Two tied groups pushed interleaved: a0 b0 a1 b1 ...
        for i in 0..8u64 {
            q.push(Micros(1.0), ("a", i));
            q.push(Micros(2.0), ("b", i));
        }
        let popped: Vec<(&str, u64)> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        let want: Vec<(&str, u64)> = (0..8)
            .map(|i| ("a", i))
            .chain((0..8).map(|i| ("b", i)))
            .collect();
        assert_eq!(popped, want);
    }

    #[test]
    fn seq_numbers_are_unique_and_monotone() {
        let mut q = EventQueue::new();
        let s0 = q.push(Micros(3.0), ());
        let s1 = q.push(Micros(1.0), ());
        assert!(s1 > s0);
        let first = q.pop().unwrap();
        assert_eq!(first.seq, s1); // earlier time wins despite later seq
        assert_eq!(q.pop().unwrap().seq, s0);
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Micros(6.0), 'x');
        q.push(Micros(2.0), 'y');
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Micros(2.0)));
        let _ = q.pop();
        assert_eq!(q.len(), 1);
    }
}
