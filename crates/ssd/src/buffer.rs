//! Write-back buffer.
//!
//! The paper modified FlashSim "by adding a write-back write buffer"
//! (§6.2). Host writes land in the buffer and are acknowledged
//! immediately; dirty pages flush to flash on LRU eviction. Host reads
//! that hit the buffer skip the flash entirely.

use std::collections::{BTreeMap, HashMap};

/// LRU write-back buffer over logical pages.
///
/// ```
/// use ssd::WriteBuffer;
///
/// let mut buf = WriteBuffer::new(2);
/// assert_eq!(buf.write(1), None);
/// assert_eq!(buf.write(1), None); // rewrite absorbed
/// assert_eq!(buf.write(2), None);
/// assert_eq!(buf.write(3), Some(1)); // LRU evicted to flash
/// ```
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    capacity: u64,
    next_seq: u64,
    by_lpn: HashMap<u64, u64>,
    by_seq: BTreeMap<u64, u64>,
}

impl WriteBuffer {
    /// Creates a buffer holding at most `capacity` dirty pages.
    pub fn new(capacity: u64) -> WriteBuffer {
        WriteBuffer {
            capacity: capacity.max(1),
            next_seq: 0,
            by_lpn: HashMap::new(),
            by_seq: BTreeMap::new(),
        }
    }

    /// Dirty pages currently buffered.
    pub fn len(&self) -> u64 {
        self.by_lpn.len() as u64
    }

    /// `true` when the buffer holds no dirty pages.
    pub fn is_empty(&self) -> bool {
        self.by_lpn.is_empty()
    }

    /// Buffer capacity in pages.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// `true` if `lpn` has a buffered (dirty) copy.
    pub fn contains(&self, lpn: u64) -> bool {
        self.by_lpn.contains_key(&lpn)
    }

    /// Buffers a write of `lpn`; returns the evicted dirty page that must
    /// now be programmed to flash, if the buffer overflowed.
    ///
    /// Rewriting a buffered page coalesces (no eviction, recency
    /// refreshed) — the write-absorption effect of a write-back buffer.
    pub fn write(&mut self, lpn: u64) -> Option<u64> {
        if let Some(old_seq) = self.by_lpn.remove(&lpn) {
            self.by_seq.remove(&old_seq);
        }
        let evicted = if self.by_lpn.len() as u64 >= self.capacity {
            self.pop_lru()
        } else {
            None
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.by_lpn.insert(lpn, seq);
        self.by_seq.insert(seq, lpn);
        evicted
    }

    /// Marks a buffered page as recently used (on a read hit).
    pub fn touch(&mut self, lpn: u64) {
        if let Some(old_seq) = self.by_lpn.get(&lpn).copied() {
            self.by_seq.remove(&old_seq);
            let seq = self.next_seq;
            self.next_seq += 1;
            self.by_lpn.insert(lpn, seq);
            self.by_seq.insert(seq, lpn);
        }
    }

    /// Removes and returns the least-recently-written dirty page.
    pub fn pop_lru(&mut self) -> Option<u64> {
        let (&seq, &lpn) = self.by_seq.iter().next()?;
        self.by_seq.remove(&seq);
        self.by_lpn.remove(&lpn);
        Some(lpn)
    }

    /// Checkpoint view: `(sequence, lpn)` entries in LRU (sequence)
    /// order plus the sequence counter — enough to rebuild the buffer
    /// bit-identically, eviction order included.
    pub fn snapshot(&self) -> (Vec<(u64, u64)>, u64) {
        (
            self.by_seq.iter().map(|(&seq, &lpn)| (seq, lpn)).collect(),
            self.next_seq,
        )
    }

    /// Rebuilds a buffer from a [`snapshot`](Self::snapshot), validating
    /// the entries (untrusted input fails typed, never panics).
    ///
    /// # Errors
    ///
    /// A static description of the first inconsistency: capacity
    /// overflow, duplicate sequence or page, or a sequence at/after the
    /// counter.
    pub fn from_snapshot(
        capacity: u64,
        entries: &[(u64, u64)],
        next_seq: u64,
    ) -> Result<WriteBuffer, &'static str> {
        let mut buf = WriteBuffer::new(capacity);
        if entries.len() as u64 > buf.capacity {
            return Err("buffer snapshot exceeds capacity");
        }
        for &(seq, lpn) in entries {
            if seq >= next_seq {
                return Err("buffer entry at or after the sequence counter");
            }
            if buf.by_seq.insert(seq, lpn).is_some() {
                return Err("duplicate buffer sequence");
            }
            if buf.by_lpn.insert(lpn, seq).is_some() {
                return Err("duplicate buffered page");
            }
        }
        buf.next_seq = next_seq;
        Ok(buf)
    }

    /// Drains every dirty page (shutdown flush), LRU first.
    pub fn drain(&mut self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.by_lpn.len());
        while let Some(lpn) = self.pop_lru() {
            out.push(lpn);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorbs_rewrites() {
        let mut buf = WriteBuffer::new(2);
        assert_eq!(buf.write(1), None);
        assert_eq!(buf.write(1), None, "rewrite coalesces");
        assert_eq!(buf.write(1), None);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn evicts_lru_on_overflow() {
        let mut buf = WriteBuffer::new(2);
        buf.write(1);
        buf.write(2);
        assert_eq!(buf.write(3), Some(1));
        assert!(buf.contains(2));
        assert!(buf.contains(3));
        assert!(!buf.contains(1));
    }

    #[test]
    fn touch_protects_from_eviction() {
        let mut buf = WriteBuffer::new(2);
        buf.write(1);
        buf.write(2);
        buf.touch(1);
        assert_eq!(buf.write(3), Some(2));
        assert!(buf.contains(1));
    }

    #[test]
    fn rewrite_refreshes_recency() {
        let mut buf = WriteBuffer::new(2);
        buf.write(1);
        buf.write(2);
        buf.write(1); // 1 becomes most recent
        assert_eq!(buf.write(3), Some(2));
    }

    #[test]
    fn drain_returns_all_lru_first() {
        let mut buf = WriteBuffer::new(4);
        for lpn in [5, 6, 7] {
            buf.write(lpn);
        }
        buf.touch(5);
        assert_eq!(buf.drain(), vec![6, 7, 5]);
        assert!(buf.is_empty());
    }

    #[test]
    fn capacity_clamped_to_one() {
        let mut buf = WriteBuffer::new(0);
        assert_eq!(buf.capacity(), 1);
        assert_eq!(buf.write(1), None);
        assert_eq!(buf.write(2), Some(1));
    }
}
