//! SSD simulator configuration.
//!
//! Mirrors the evaluation setup of the paper's §6.2: a page-mapping FTL
//! over the Table 6 device with 27 % over-provisioning, a write-back
//! buffer, and one of four storage schemes (baseline, LDPC-in-SSD,
//! LevelAdjust-only, LevelAdjust+AccessEval).

use flash_model::{CellTech, DeviceGeometry, Hours};
use flexlevel::{AccessEvalConfig, NunmaScheme};
use ldpc::{IterationProfile, ReadLatencyModel, SensingSchedule};
use serde::{Deserialize, Serialize};

use crate::faults::FaultConfig;
use crate::ftl::GcPolicy;
use crate::scenario::EnvironmentConfig;

/// Which storage system design the simulator runs (the four systems of
/// Figure 6a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// No optimisation: every read senses with the worst-case soft level
    /// count the current wear state could require.
    Baseline,
    /// LDPC-in-SSD (Zhao et al., FAST'13): progressive sensing — retry
    /// with one more soft level until the frame decodes.
    LdpcInSsd,
    /// LevelAdjust applied to as much of the device as over-provisioning
    /// allows, with no selectivity.
    LevelAdjustOnly,
    /// The full FlexLevel system: LevelAdjust + NUNMA applied only to the
    /// AccessEval-selected HLO data.
    FlexLevel,
}

impl Scheme {
    /// All four evaluated systems in the paper's order.
    pub const ALL: [Scheme; 4] = [
        Scheme::Baseline,
        Scheme::LdpcInSsd,
        Scheme::LevelAdjustOnly,
        Scheme::FlexLevel,
    ];

    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Baseline => "baseline",
            Scheme::LdpcInSsd => "LDPC-in-SSD",
            Scheme::LevelAdjustOnly => "LevelAdjust-only",
            Scheme::FlexLevel => "LevelAdjust+AccessEval",
        }
    }

    /// `true` if the scheme stores any data in reduced-state pages.
    pub fn uses_reduced_pages(self) -> bool {
        matches!(self, Scheme::LevelAdjustOnly | Scheme::FlexLevel)
    }
}

/// How the simulator turns flash work into time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TimingModel {
    /// The original FlashSim-style model: one busy horizon per channel; a
    /// request waits for its channel, pays its lumped latency, and
    /// background work extends the horizon behind it. The default, and
    /// the reference the golden counters are pinned against.
    #[default]
    SingleQueue,
    /// Discrete-event pipelined model: every operation is a chain of
    /// sense/transfer/decode/program/erase stages scheduled on per-plane,
    /// per-channel and per-decoder-slot busy horizons, so stages of
    /// different requests overlap (see [`crate::pipeline`]).
    Pipelined,
}

impl TimingModel {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            TimingModel::SingleQueue => "single-queue",
            TimingModel::Pipelined => "pipelined",
        }
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SsdConfig {
    /// Device geometry (blocks, pages, over-provisioning).
    pub geometry: DeviceGeometry,
    /// Read/decode latency model (Table 6 timing).
    pub latency: ReadLatencyModel,
    /// Raw-BER → extra-sensing-levels schedule.
    pub schedule: SensingSchedule,
    /// Measured per-sensing-depth decoder iteration counts (e.g. from
    /// [`IterationProfile::from_ladder`] over a `minimum_levels` run).
    /// When set, per-read decode latency charges the measured mean
    /// iterations at the read's sensing depth instead of the
    /// `typical_iterations` BER heuristic. `None` (the default) keeps the
    /// heuristic.
    pub measured_iterations: Option<IterationProfile>,
    /// Storage scheme under test.
    pub scheme: Scheme,
    /// Cell technology the device runs (SLC/MLC/TLC). The default
    /// [`CellTech::Mlc`] reproduces the paper's design point exactly;
    /// other technologies re-derive the level configurations and code
    /// densities from the N-level `flash-model` generalization.
    pub cell: CellTech,
    /// NUNMA configuration used by reduced-state pages.
    pub nunma: NunmaScheme,
    /// AccessEval policy (used by [`Scheme::FlexLevel`]).
    pub access_eval: AccessEvalConfig,
    /// Write-back buffer capacity in pages.
    pub buffer_pages: u64,
    /// Independent flash channels; requests are routed by LPN and queue
    /// per channel (1 = the paper's single-queue FlashSim model).
    pub channels: u32,
    /// Timing model: the classic single-queue horizon or the staged
    /// discrete-event pipeline.
    pub timing_model: TimingModel,
    /// NAND dies per channel (pipelined model only; sensing, programming
    /// and erasing parallelize across dies).
    pub dies_per_channel: u32,
    /// Planes per die (pipelined model only).
    pub planes_per_die: u32,
    /// Concurrent LDPC decoder slots in the controller (pipelined model
    /// only).
    pub decoder_slots: u32,
    /// GC trigger: collect when free blocks fall to this count.
    pub gc_low_watermark: u32,
    /// GC victim-selection policy.
    pub gc_policy: GcPolicy,
    /// Accumulated P/E cycles at simulation start (the paper sweeps
    /// 4000–6000).
    pub base_pe_cycles: u32,
    /// Maximum retention age of resident data; ages are drawn uniformly
    /// from `[0, max_data_age]` at first touch (steady-state assumption).
    pub max_data_age: Hours,
    /// Minimum effective over-provisioning fraction LevelAdjust-only must
    /// preserve when converting blocks to reduced mode.
    pub min_over_provisioning: f64,
    /// RNG seed for data ages.
    pub seed: u64,
    /// Fault-injection model (decode failures, program failures, die
    /// faults, patrol scrub). Disabled by default — golden counters and
    /// published numbers never see it.
    pub faults: FaultConfig,
    /// Hostile-environment scenario components (correlated clusters,
    /// thermal gradient, read disturb). Empty by default — an empty
    /// environment adds no state and leaves every golden counter
    /// untouched.
    pub environment: EnvironmentConfig,
    /// Worker threads for *independent* sweeps built on this config
    /// (trace × scheme fan-out, BER shards); `0` = auto, honouring the
    /// `FLEXLEVEL_THREADS` environment variable. The event loop of a
    /// single simulation instance is inherently serial and unaffected, as
    /// are its results: the engine's determinism contract guarantees
    /// thread count never changes any output.
    pub threads: u32,
}

impl SsdConfig {
    /// A scaled-down device (default 512 blocks ≈ 512 MB) with the
    /// paper's policy parameters, suitable for fast simulation. The
    /// AccessEval pool is scaled like the paper's: 64 GB of a 256 GB
    /// device = 25 % of the logical space.
    pub fn scaled(scheme: Scheme, blocks: u32) -> SsdConfig {
        let geometry = DeviceGeometry::scaled(blocks).expect("valid scaled geometry");
        let pool_pages = geometry.logical_pages() / 4 * 100 / 73; // 64/256 of raw ≈ logical/4·(100/73)
        SsdConfig {
            geometry,
            latency: ReadLatencyModel::paper_mlc(),
            schedule: crate::device::derived_schedule(),
            measured_iterations: None,
            scheme,
            cell: CellTech::Mlc,
            nunma: NunmaScheme::Nunma3,
            access_eval: AccessEvalConfig::paper(geometry.page_bytes() as u64)
                .with_pool_pages(pool_pages),
            buffer_pages: (geometry.logical_pages() / 128).max(16),
            channels: 1,
            timing_model: TimingModel::SingleQueue,
            dies_per_channel: 4,
            planes_per_die: 1,
            decoder_slots: 2,
            gc_low_watermark: 4,
            gc_policy: GcPolicy::Greedy,
            base_pe_cycles: 6000,
            max_data_age: Hours::months(1.0),
            min_over_provisioning: 0.04,
            seed: 42,
            faults: FaultConfig::default(),
            environment: EnvironmentConfig::default(),
            threads: 0,
        }
    }

    /// Installs a fault-injection configuration (use
    /// [`FaultConfig::enabled`] to switch injection on).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultConfig) -> SsdConfig {
        self.faults = faults;
        self
    }

    /// Selects the cell technology (SLC/MLC/TLC).
    #[must_use]
    pub fn with_cell(mut self, cell: CellTech) -> SsdConfig {
        self.cell = cell;
        self
    }

    /// Installs hostile-environment scenario components.
    #[must_use]
    pub fn with_environment(mut self, environment: EnvironmentConfig) -> SsdConfig {
        self.environment = environment;
        self
    }

    /// Sets the starting wear level (Figure 6b sweeps this).
    #[must_use]
    pub fn with_base_pe(mut self, pe: u32) -> SsdConfig {
        self.base_pe_cycles = pe;
        self
    }

    /// Sets the data-age ceiling.
    #[must_use]
    pub fn with_max_age(mut self, age: Hours) -> SsdConfig {
        self.max_data_age = age;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> SsdConfig {
        self.seed = seed;
        self
    }

    /// Sets the channel count (parallel flash queues).
    #[must_use]
    pub fn with_channels(mut self, channels: u32) -> SsdConfig {
        self.channels = channels.max(1);
        self
    }

    /// Sets the worker-thread count for sweeps over this config
    /// (`0` = auto).
    #[must_use]
    pub fn with_threads(mut self, threads: u32) -> SsdConfig {
        self.threads = threads;
        self
    }

    /// Selects the timing model.
    #[must_use]
    pub fn with_timing_model(mut self, model: TimingModel) -> SsdConfig {
        self.timing_model = model;
        self
    }

    /// Sets dies per channel (pipelined model).
    #[must_use]
    pub fn with_dies_per_channel(mut self, dies: u32) -> SsdConfig {
        self.dies_per_channel = dies.max(1);
        self
    }

    /// Sets planes per die (pipelined model).
    #[must_use]
    pub fn with_planes_per_die(mut self, planes: u32) -> SsdConfig {
        self.planes_per_die = planes.max(1);
        self
    }

    /// Sets the controller decoder-slot count (pipelined model).
    #[must_use]
    pub fn with_decoder_slots(mut self, slots: u32) -> SsdConfig {
        self.decoder_slots = slots.max(1);
        self
    }

    /// Installs a measured iteration profile; per-read decode latency then
    /// uses it instead of the BER heuristic.
    #[must_use]
    pub fn with_measured_iterations(mut self, profile: IterationProfile) -> SsdConfig {
        self.measured_iterations = Some(profile);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheme_labels() {
        assert_eq!(Scheme::ALL.len(), 4);
        assert_eq!(Scheme::Baseline.label(), "baseline");
        assert_eq!(Scheme::FlexLevel.label(), "LevelAdjust+AccessEval");
        assert!(!Scheme::Baseline.uses_reduced_pages());
        assert!(!Scheme::LdpcInSsd.uses_reduced_pages());
        assert!(Scheme::LevelAdjustOnly.uses_reduced_pages());
        assert!(Scheme::FlexLevel.uses_reduced_pages());
    }

    #[test]
    fn scaled_config_proportions() {
        let cfg = SsdConfig::scaled(Scheme::FlexLevel, 512);
        assert_eq!(cfg.geometry.blocks(), 512);
        // Pool ≈ 25% of raw capacity (the paper's 64 GB of 256 GB).
        let pool_fraction = cfg.access_eval.pool_pages as f64 / cfg.geometry.total_pages() as f64;
        assert!(
            (pool_fraction - 0.25).abs() < 0.01,
            "pool fraction {pool_fraction}"
        );
        assert!(cfg.buffer_pages >= 16);
    }

    #[test]
    fn builders() {
        let cfg = SsdConfig::scaled(Scheme::Baseline, 64)
            .with_base_pe(4000)
            .with_max_age(Hours::weeks(1.0))
            .with_seed(7)
            .with_threads(3);
        assert_eq!(cfg.base_pe_cycles, 4000);
        assert_eq!(cfg.max_data_age, Hours::weeks(1.0));
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.threads, 3);
        assert_eq!(SsdConfig::scaled(Scheme::Baseline, 64).threads, 0);
    }

    #[test]
    fn timing_model_defaults_to_single_queue() {
        let cfg = SsdConfig::scaled(Scheme::Baseline, 64);
        assert_eq!(cfg.timing_model, TimingModel::SingleQueue);
        assert_eq!(TimingModel::default(), TimingModel::SingleQueue);
        assert_eq!(TimingModel::Pipelined.label(), "pipelined");
        let cfg = cfg
            .with_timing_model(TimingModel::Pipelined)
            .with_dies_per_channel(8)
            .with_planes_per_die(2)
            .with_decoder_slots(4);
        assert_eq!(cfg.timing_model, TimingModel::Pipelined);
        assert_eq!(cfg.dies_per_channel, 8);
        assert_eq!(cfg.planes_per_die, 2);
        assert_eq!(cfg.decoder_slots, 4);
        // Degenerate knob values clamp to 1.
        let cfg = cfg
            .with_dies_per_channel(0)
            .with_planes_per_die(0)
            .with_decoder_slots(0);
        assert_eq!(
            (cfg.dies_per_channel, cfg.planes_per_die, cfg.decoder_slots),
            (1, 1, 1)
        );
    }

    #[test]
    fn faults_default_off() {
        let cfg = SsdConfig::scaled(Scheme::FlexLevel, 64);
        assert!(!cfg.faults.enabled);
        let cfg = cfg.with_faults(FaultConfig::enabled().with_scale(2.0));
        assert!(cfg.faults.enabled);
        assert_eq!(cfg.faults.scale, 2.0);
    }

    #[test]
    fn cell_and_environment_default_to_the_design_point() {
        let cfg = SsdConfig::scaled(Scheme::FlexLevel, 64);
        assert_eq!(cfg.cell, CellTech::Mlc);
        assert!(!cfg.environment.is_enabled());
        let cfg = cfg.with_cell(CellTech::Tlc).with_environment(
            EnvironmentConfig::default()
                .with_thermal(crate::scenario::ThermalGradientConfig::default()),
        );
        assert_eq!(cfg.cell, CellTech::Tlc);
        assert!(cfg.environment.is_enabled());
    }

    #[test]
    fn measured_iterations_defaults_off() {
        let cfg = SsdConfig::scaled(Scheme::FlexLevel, 64);
        assert_eq!(cfg.measured_iterations, None);
        let profile = IterationProfile::new([2.0; IterationProfile::SLOTS]);
        let cfg = cfg.with_measured_iterations(profile);
        assert_eq!(cfg.measured_iterations, Some(profile));
    }
}
