//! Per-device reliability state: wear, data ages and cached BER queries.
//!
//! Every normal-page read needs to know its raw BER (wear + retention age
//! of the stored data) to determine the soft-sensing cost. Recomputing
//! the analytic BER integral per read would dominate simulation time, so
//! queries are quantised into (P/E bucket, age bucket) cells and cached.
//! Reduced-page reads use the NUNMA configuration, whose BER stays below
//! the sensing trigger by design (verified at construction).

use std::collections::HashMap;

use flash_model::{CellTech, Hours, LevelConfig, Micros};
use flexlevel::NunmaScheme;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use reliability::{analytic, ProgramModel, RetentionModel};

use crate::pipeline::StageKind;

/// Quantisation granularity for BER cache keys.
const PE_BUCKET: u32 = 250;
const AGE_BUCKETS: u32 = 32;

/// Reliability oracle for the simulated device.
#[derive(Debug)]
pub struct ReliabilityState {
    normal_config: LevelConfig,
    reduced_config: LevelConfig,
    normal_bits: f64,
    reduced_bits: f64,
    program: ProgramModel,
    retention: RetentionModel,
    max_age: Hours,
    ages: HashMap<u64, Hours>,
    rng: StdRng,
    ber_cache: HashMap<(u32, u32), f64>,
    reduced_cache: HashMap<(u32, u32), f64>,
}

impl ReliabilityState {
    /// Creates the oracle for the paper's MLC design point. Data ages are
    /// drawn from `U(0, max_age)` on first touch (steady-state resident
    /// data) using `seed`.
    pub fn new(nunma: NunmaScheme, max_age: Hours, seed: u64) -> ReliabilityState {
        ReliabilityState::with_cell(CellTech::Mlc, nunma, max_age, seed)
    }

    /// Creates the oracle for an arbitrary cell technology. MLC keeps the
    /// paper's exact level configurations (`LevelConfig::normal_mlc` and
    /// the NUNMA reduced shape) and code densities (2.0 / 1.5 bits per
    /// cell), bit-identical to [`ReliabilityState::new`]; SLC and TLC
    /// re-derive both from the N-level `flash-model` generalization.
    pub fn with_cell(
        cell: CellTech,
        nunma: NunmaScheme,
        max_age: Hours,
        seed: u64,
    ) -> ReliabilityState {
        let (normal_config, reduced_config, normal_bits, reduced_bits) = match cell {
            CellTech::Mlc => (
                LevelConfig::normal_mlc(),
                nunma.config().level_config(),
                2.0,
                1.5,
            ),
            tech => (
                tech.level_config(),
                tech.reduced_level_config(),
                tech.bits_per_cell() as f64,
                tech.reduced_bits_per_cell(),
            ),
        };
        ReliabilityState {
            normal_config,
            reduced_config,
            normal_bits,
            reduced_bits,
            program: ProgramModel::default(),
            retention: RetentionModel::paper(),
            max_age,
            ages: HashMap::new(),
            rng: StdRng::seed_from_u64(seed),
            ber_cache: HashMap::new(),
            reduced_cache: HashMap::new(),
        }
    }

    /// Retention age of `lpn`'s stored data, sampling a steady-state age
    /// on first touch.
    pub fn age(&mut self, lpn: u64) -> Hours {
        let max = self.max_age.as_f64();
        let rng = &mut self.rng;
        *self
            .ages
            .entry(lpn)
            .or_insert_with(|| Hours(rng.gen::<f64>() * max))
    }

    /// Records a (re)write of `lpn`.
    ///
    /// The trace is a short *window* of a long-running system (minutes of
    /// arrivals against months of retention), so rather than pinning
    /// rewritten data to age zero — which would make the trace window
    /// look artificially fresh — the age is resampled from the
    /// steady-state distribution, biased young (triangular toward zero):
    /// recently written data is more likely young, but the window
    /// represents all phases of the device's retention cycle.
    pub fn record_write(&mut self, lpn: u64) {
        let max = self.max_age.as_f64();
        let u: f64 = self.rng.gen();
        let v: f64 = self.rng.gen();
        self.ages.insert(lpn, Hours(u.min(v) * max));
    }

    /// Raw BER of a normal page at `pe_cycles` wear whose data is `age`
    /// old (cached on a quantised grid).
    pub fn normal_ber(&mut self, pe_cycles: u32, age: Hours) -> f64 {
        let pe_bucket = pe_cycles / PE_BUCKET;
        let age_bucket = ((age.as_f64() / self.max_age.as_f64().max(1e-9)) * AGE_BUCKETS as f64)
            .min(AGE_BUCKETS as f64) as u32;
        if let Some(&ber) = self.ber_cache.get(&(pe_bucket, age_bucket)) {
            return ber;
        }
        // Evaluate at the bucket centre.
        let pe = pe_bucket * PE_BUCKET + PE_BUCKET / 2;
        let age_center =
            Hours((age_bucket as f64 + 0.5) / AGE_BUCKETS as f64 * self.max_age.as_f64());
        // Retention-only, matching how the paper derives Table 5 from
        // Table 4's retention BER: cell-to-cell interference acts at
        // program time and is compensated by read-reference calibration,
        // so the read path's sensing need keys on retention loss.
        let ber = analytic::estimate(
            &self.normal_config,
            &self.program,
            None,
            Some((&self.retention, pe, age_center)),
            self.normal_bits,
        )
        .ber;
        self.ber_cache.insert((pe_bucket, age_bucket), ber);
        ber
    }

    /// Raw BER of a reduced (NUNMA) page under the same stress (cached on
    /// the same quantised grid as [`normal_ber`](Self::normal_ber)).
    pub fn reduced_ber(&mut self, pe_cycles: u32, age: Hours) -> f64 {
        let pe_bucket = pe_cycles / PE_BUCKET;
        let age_bucket = ((age.as_f64() / self.max_age.as_f64().max(1e-9)) * AGE_BUCKETS as f64)
            .min(AGE_BUCKETS as f64) as u32;
        if let Some(&ber) = self.reduced_cache.get(&(pe_bucket, age_bucket)) {
            return ber;
        }
        let pe = pe_bucket * PE_BUCKET + PE_BUCKET / 2;
        let age_center =
            Hours((age_bucket as f64 + 0.5) / AGE_BUCKETS as f64 * self.max_age.as_f64());
        let ber = analytic::estimate(
            &self.reduced_config,
            &self.program,
            None,
            Some((&self.retention, pe, age_center)),
            self.reduced_bits,
        )
        .ber;
        self.reduced_cache.insert((pe_bucket, age_bucket), ber);
        ber
    }

    /// Worst-case BER the device must provision for at `pe_cycles`: data
    /// aged to the retention ceiling.
    pub fn worst_case_ber(&mut self, pe_cycles: u32) -> f64 {
        self.normal_ber(pe_cycles, self.max_age)
    }

    /// Marks `lpn` as just rewritten *in place* by a patrol-scrub
    /// refresh: its retention age drops to zero. Unlike
    /// [`record_write`](Self::record_write) this consumes no RNG draws —
    /// a refreshed page really is fresh, and keeping the age stream
    /// untouched preserves the determinism contract for fault-free pages.
    pub fn refresh(&mut self, lpn: u64) {
        self.ages.insert(lpn, Hours(0.0));
    }

    /// Relative BER improvement of the device's read-retry table at the
    /// `pe_cycles` stress point with worst-case retention: the
    /// calibrated-over-nominal ratio of
    /// [`reliability::read_retry`]. This is what one Vref-shift re-read
    /// buys the recovery ladder (see [`crate::recovery`]); values are in
    /// `(0, 1]`, smaller meaning the retry table recovers more margin.
    pub fn retry_gain(&self, pe_cycles: u32) -> f64 {
        use flash_model::Volts;
        let nominal = reliability::read_retry::ber_at_shift(
            &self.normal_config,
            &self.program,
            &self.retention,
            pe_cycles,
            self.max_age,
            Volts::ZERO,
            self.normal_bits,
        );
        let calibrated = reliability::calibrated_ber(
            &self.normal_config,
            &self.program,
            &self.retention,
            pe_cycles,
            self.max_age,
        );
        if nominal <= 0.0 {
            return 1.0;
        }
        (calibrated / nominal).clamp(0.0, 1.0)
    }

    /// Number of distinct cached BER cells (diagnostics).
    pub fn cache_entries(&self) -> usize {
        self.ber_cache.len()
    }

    /// Checkpoint view of the mutable accumulators: `(lpn, age hours)`
    /// pairs sorted by LPN plus the raw RNG state. The BER caches are
    /// pure memoisation and deliberately excluded — they repopulate on
    /// demand with bit-identical values.
    pub fn snapshot(&self) -> (Vec<(u64, f64)>, [u64; 4]) {
        let mut ages: Vec<(u64, f64)> = self
            .ages
            .iter()
            .map(|(&lpn, &age)| (lpn, age.as_f64()))
            .collect();
        ages.sort_unstable_by_key(|&(lpn, _)| lpn);
        (ages, self.rng.state())
    }

    /// Restores the accumulators captured by [`snapshot`](Self::snapshot)
    /// into this oracle, replacing the age table and RNG state.
    pub fn restore(&mut self, ages: &[(u64, f64)], rng: [u64; 4]) {
        self.ages = ages.iter().map(|&(lpn, age)| (lpn, Hours(age))).collect();
        self.rng = StdRng::from_state(rng);
    }
}

/// Busy horizons of every independently schedulable hardware unit in the
/// pipelined timing model: channels (bus transfers), planes (sensing,
/// programming, erasing — `channels × dies/channel × planes/die` units)
/// and controller decoder slots.
///
/// Reservation is first-come-first-served in *request* order: a stage
/// becoming ready at `t` on a unit free at `f` starts at `max(t, f)` and
/// holds the unit for its duration. Because the event loop asks in
/// deterministic `(time, seq)` order and decoder ties break toward the
/// lowest slot index, the whole schedule is a pure function of the
/// admitted chains.
#[derive(Debug, Clone)]
pub struct ResourcePool {
    channels: Vec<Micros>,
    planes: Vec<Micros>,
    decoders: Vec<Micros>,
    dies_per_channel: u64,
    planes_per_die: u64,
}

impl ResourcePool {
    /// Creates an all-idle pool; every count is clamped to at least 1.
    pub fn new(
        channels: u32,
        dies_per_channel: u32,
        planes_per_die: u32,
        decoder_slots: u32,
    ) -> ResourcePool {
        let channels = channels.max(1) as usize;
        let dies = dies_per_channel.max(1) as usize;
        let planes = planes_per_die.max(1) as usize;
        ResourcePool {
            channels: vec![Micros::ZERO; channels],
            planes: vec![Micros::ZERO; channels * dies * planes],
            decoders: vec![Micros::ZERO; decoder_slots.max(1) as usize],
            dies_per_channel: dies as u64,
            planes_per_die: planes as u64,
        }
    }

    /// The channel `lpn` is wired to (matches the single-queue router).
    pub fn channel_for(&self, lpn: u64) -> usize {
        (lpn % self.channels.len() as u64) as usize
    }

    /// The plane `lpn` maps to: channel-major, then die, then plane.
    pub fn plane_for(&self, lpn: u64) -> usize {
        let nch = self.channels.len() as u64;
        let channel = lpn % nch;
        let die = (lpn / nch) % self.dies_per_channel;
        let plane = (lpn / (nch * self.dies_per_channel)) % self.planes_per_die;
        ((channel * self.dies_per_channel + die) * self.planes_per_die + plane) as usize
    }

    /// Number of units backing `kind`.
    pub fn units(&self, kind: StageKind) -> u32 {
        match kind {
            StageKind::Transfer => self.channels.len() as u32,
            StageKind::Sense | StageKind::Program | StageKind::Erase => self.planes.len() as u32,
            StageKind::Decode => self.decoders.len() as u32,
        }
    }

    /// Reserves the unit a `kind` stage of `lpn` needs, from `ready`, for
    /// `duration`. Returns `(start, end)`; the unit is busy until `end`.
    /// Decode stages take the earliest-free decoder slot (lowest index on
    /// ties, so the choice is deterministic).
    pub fn reserve(
        &mut self,
        kind: StageKind,
        lpn: u64,
        ready: Micros,
        duration: Micros,
    ) -> (Micros, Micros) {
        let slot = match kind {
            StageKind::Transfer => {
                let c = self.channel_for(lpn);
                &mut self.channels[c]
            }
            StageKind::Sense | StageKind::Program | StageKind::Erase => {
                let p = self.plane_for(lpn);
                &mut self.planes[p]
            }
            StageKind::Decode => {
                let best = self
                    .decoders
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.as_f64().total_cmp(&b.as_f64()))
                    .map(|(i, _)| i)
                    .expect("pool has at least one decoder slot");
                &mut self.decoders[best]
            }
        };
        let start = ready.max(*slot);
        let end = start + duration;
        *slot = end;
        (start, end)
    }

    /// The time the last unit goes idle (the schedule makespan so far).
    pub fn busy_until(&self) -> Micros {
        self.channels
            .iter()
            .chain(&self.planes)
            .chain(&self.decoders)
            .fold(Micros::ZERO, |acc, &t| acc.max(t))
    }
}

/// Derives a sensing schedule consistent with *this reproduction's* BER
/// scale by quantile-matching the paper's Table 5.
///
/// Our calibrated device model reproduces the paper's BER magnitudes but
/// with a somewhat steeper time dependence, so the paper's absolute
/// 4e-3-anchored thresholds would over-trigger soft sensing here. The
/// robust mapping is by *rank*: evaluate our analytic BER at the same
/// 20-cell wear × retention grid as Table 5, sort, and place the level
/// thresholds so each sensing depth covers exactly as many grid cells as
/// the paper reports (10× zero, 4× one, 2× two, 3× four, 1× six). This
/// preserves the quantity that drives Figure 6 — how often reads at each
/// sensing depth occur over the device's life — while staying
/// self-consistent with the simulator's per-read BER queries.
pub fn derived_schedule() -> ldpc::SensingSchedule {
    use flash_model::LevelConfig;
    let config = LevelConfig::normal_mlc();
    let program = ProgramModel::default();
    let retention = RetentionModel::paper();
    // The Table 5 grid: P/E ∈ {3000..6000} × {0 day, 1 day, 2 days,
    // 1 week, 1 month}. Retention-only, like the paper's own derivation
    // of Table 5 from Table 4.
    let mut bers = Vec::new();
    for pe in [3000u32, 4000, 5000, 6000] {
        for hours in [0.01, 24.0, 48.0, 168.0, 720.0] {
            bers.push(
                analytic::estimate(
                    &config,
                    &program,
                    None,
                    Some((&retention, pe, Hours(hours))),
                    2.0,
                )
                .ber,
            );
        }
    }
    bers.sort_by(|a, b| a.partial_cmp(b).expect("finite BER"));
    // Paper class sizes over the sorted grid, and the level each class
    // maps to (classes 3 and 5 are empty in Table 5).
    let boundary = |below: usize| (bers[below - 1] + bers[below]) / 2.0;
    let t0 = boundary(10); // 10 cells need 0 levels
    let t1 = boundary(14); // +4 cells at 1 level
    let t2 = boundary(16); // +2 cells at 2 levels
    let t3 = t2 * 1.001; // class 3 unused
    let t4 = boundary(19); // +3 cells at 4 levels
    let t5 = t4 * 1.001; // class 5 unused; the top cell needs 6
    ldpc::SensingSchedule::new(vec![t0, t1, t2, t3, t4, t5])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ReliabilityState {
        ReliabilityState::new(NunmaScheme::Nunma3, Hours::months(1.0), 1)
    }

    #[test]
    fn ages_are_sticky_until_write() {
        let mut s = state();
        let a1 = s.age(5);
        let a2 = s.age(5);
        assert_eq!(a1, a2);
        assert!(a1.as_f64() >= 0.0 && a1.as_f64() <= Hours::months(1.0).as_f64());
        // Writes resample the age from the steady-state (young-biased)
        // distribution rather than pinning it to zero.
        let mut resampled = Vec::new();
        for _ in 0..200 {
            s.record_write(5);
            resampled.push(s.age(5).as_f64());
        }
        let mean = resampled.iter().sum::<f64>() / resampled.len() as f64;
        let max = Hours::months(1.0).as_f64();
        assert!(resampled.iter().all(|&a| (0.0..=max).contains(&a)));
        // Triangular-toward-zero: mean ≈ max/3.
        assert!(
            (mean / max - 1.0 / 3.0).abs() < 0.08,
            "mean/max = {}",
            mean / max
        );
    }

    #[test]
    fn ber_grows_with_wear_and_age() {
        let mut s = state();
        let young = s.normal_ber(4000, Hours::days(1.0));
        let old = s.normal_ber(4000, Hours::months(1.0));
        assert!(old > young);
        let worn = s.normal_ber(6000, Hours::days(1.0));
        assert!(worn > young);
    }

    #[test]
    fn reduced_pages_stay_below_sensing_trigger() {
        // The whole point of NUNMA 3: even at 6000 P/E and a month of
        // retention, reduced pages need no extra sensing levels.
        let mut s = state();
        let ber = s.reduced_ber(6000, Hours::months(1.0));
        assert!(
            ber < 4e-3,
            "NUNMA3 BER {ber} must stay below the 4e-3 trigger"
        );
    }

    #[test]
    fn baseline_needs_sensing_at_high_stress() {
        let mut s = state();
        let ber = s.normal_ber(6000, Hours::months(1.0));
        assert!(
            ber > 4e-3,
            "worn baseline BER {ber} must exceed the trigger"
        );
    }

    #[test]
    fn cache_bounds_queries() {
        let mut s = state();
        for pe in [4000u32, 4100, 6000] {
            for d in 1..20 {
                let _ = s.normal_ber(pe, Hours::days(d as f64));
            }
        }
        // 3 PE values → ≤ 2 distinct PE buckets... plus ≤ 32 age buckets.
        assert!(s.cache_entries() <= 3 * 33);
        assert!(s.cache_entries() >= 2);
    }

    #[test]
    fn worst_case_dominates() {
        let mut s = state();
        let worst = s.worst_case_ber(5000);
        let typical = s.normal_ber(5000, Hours::days(2.0));
        assert!(worst >= typical);
    }

    #[test]
    fn refresh_zeroes_age_without_rng() {
        let mut a = state();
        let mut b = state();
        let _ = a.age(3);
        let _ = b.age(3);
        // Refresh pins the page's age to zero…
        a.refresh(3);
        assert_eq!(a.age(3), Hours(0.0));
        // …and consumes no randomness: the next first-touch sample on an
        // unrelated page matches a state that never refreshed.
        assert_eq!(a.age(99), b.age(99));
    }

    #[test]
    fn retry_gain_recovers_margin_at_stress() {
        let s = state();
        let gain = s.retry_gain(6000);
        assert!(
            gain > 0.0 && gain < 0.5,
            "retry table should at least halve the worst-case BER, gain {gain}"
        );
        // At any wear the ratio stays a valid FER factor in (0, 1].
        let young = s.retry_gain(1000);
        assert!(young > 0.0 && young <= 1.0, "young gain {young}");
    }

    #[test]
    fn with_cell_mlc_is_bit_identical_to_new() {
        let mut legacy = state();
        let mut mlc =
            ReliabilityState::with_cell(CellTech::Mlc, NunmaScheme::Nunma3, Hours::months(1.0), 1);
        for pe in [3000u32, 4500, 6000] {
            for days in [1.0, 7.0, 30.0] {
                let age = Hours::days(days);
                assert_eq!(
                    legacy.normal_ber(pe, age).to_bits(),
                    mlc.normal_ber(pe, age).to_bits()
                );
                assert_eq!(
                    legacy.reduced_ber(pe, age).to_bits(),
                    mlc.reduced_ber(pe, age).to_bits()
                );
            }
        }
        assert_eq!(
            legacy.retry_gain(6000).to_bits(),
            mlc.retry_gain(6000).to_bits()
        );
    }

    #[test]
    fn tlc_is_noisier_slc_cleaner_than_mlc() {
        let mut slc =
            ReliabilityState::with_cell(CellTech::Slc, NunmaScheme::Nunma3, Hours::months(1.0), 1);
        let mut mlc = state();
        let mut tlc =
            ReliabilityState::with_cell(CellTech::Tlc, NunmaScheme::Nunma3, Hours::months(1.0), 1);
        let age = Hours::days(7.0);
        let (s, m, t) = (
            slc.normal_ber(5000, age),
            mlc.normal_ber(5000, age),
            tlc.normal_ber(5000, age),
        );
        assert!(s < m && m < t, "SLC {s} < MLC {m} < TLC {t}");
        // TLC's reduced (7-level) mode buys back margin like the paper's
        // LevelAdjust does for MLC.
        assert!(tlc.reduced_ber(5000, age) < t);
    }

    #[test]
    fn derived_schedule_shape() {
        let schedule = derived_schedule();
        // Six thresholds (classes 0..=5; class 6 is the saturation).
        assert_eq!(schedule.max_extra_levels(), 6);
        let t = schedule.thresholds();
        assert!(t.windows(2).all(|w| w[0] < w[1]), "monotone: {t:?}");
        // Quantile matching: the class populations over the Table 5 grid
        // must match the paper's counts (10, 4, 2, 0, 3, 0, 1).
        let mut histogram = [0u32; 7];
        for pe in [3000u32, 4000, 5000, 6000] {
            for hours in [0.01, 24.0, 48.0, 168.0, 720.0] {
                let exact = reliability::analytic::estimate(
                    &flash_model::LevelConfig::normal_mlc(),
                    &reliability::ProgramModel::default(),
                    None,
                    Some((&reliability::RetentionModel::paper(), pe, Hours(hours))),
                    2.0,
                )
                .ber;
                histogram[schedule.required_levels(exact) as usize] += 1;
            }
        }
        assert_eq!(
            histogram,
            [10, 4, 2, 0, 3, 0, 1],
            "class sizes match Table 5"
        );
    }

    #[test]
    fn derived_schedule_zero_for_fresh_data() {
        let schedule = derived_schedule();
        let mut s = state();
        let fresh = s.normal_ber(3000, Hours(0.01));
        assert_eq!(schedule.required_levels(fresh), 0);
    }

    #[test]
    fn resource_pool_serializes_same_unit() {
        let mut pool = ResourcePool::new(1, 1, 1, 1);
        // Two transfers on the same channel queue back-to-back.
        let (s1, e1) = pool.reserve(StageKind::Transfer, 0, Micros(0.0), Micros(40.0));
        let (s2, e2) = pool.reserve(StageKind::Transfer, 0, Micros(0.0), Micros(40.0));
        assert_eq!((s1, e1), (Micros(0.0), Micros(40.0)));
        assert_eq!((s2, e2), (Micros(40.0), Micros(80.0)));
        // A sense on the (only) plane is an independent unit: no wait.
        let (s3, _) = pool.reserve(StageKind::Sense, 0, Micros(0.0), Micros(90.0));
        assert_eq!(s3, Micros(0.0));
        assert_eq!(pool.busy_until(), Micros(90.0));
    }

    #[test]
    fn resource_pool_spreads_dies() {
        // 1 channel × 4 dies: consecutive LPNs land on distinct planes
        // and sense concurrently.
        let mut pool = ResourcePool::new(1, 4, 1, 1);
        assert_eq!(pool.units(StageKind::Sense), 4);
        assert_eq!(pool.units(StageKind::Transfer), 1);
        for lpn in 0..4u64 {
            let (start, _) = pool.reserve(StageKind::Sense, lpn, Micros(0.0), Micros(90.0));
            assert_eq!(start, Micros(0.0), "lpn {lpn} should have its own die");
        }
        // The fifth wraps onto die 0 and waits.
        let (start, _) = pool.reserve(StageKind::Sense, 4, Micros(0.0), Micros(90.0));
        assert_eq!(start, Micros(90.0));
    }

    #[test]
    fn decoder_slots_balance_deterministically() {
        let mut pool = ResourcePool::new(1, 1, 1, 2);
        let (s1, _) = pool.reserve(StageKind::Decode, 0, Micros(0.0), Micros(10.0));
        let (s2, _) = pool.reserve(StageKind::Decode, 1, Micros(0.0), Micros(10.0));
        let (s3, _) = pool.reserve(StageKind::Decode, 2, Micros(0.0), Micros(10.0));
        assert_eq!(s1, Micros(0.0));
        assert_eq!(s2, Micros(0.0)); // second slot
        assert_eq!(s3, Micros(10.0)); // both busy: earliest-free wins
    }

    #[test]
    fn plane_routing_matches_channel_router() {
        let pool = ResourcePool::new(4, 2, 2, 1);
        for lpn in 0..64u64 {
            assert_eq!(pool.channel_for(lpn) as u64, lpn % 4);
            assert!(pool.plane_for(lpn) < 16);
        }
        // Zero-valued knobs clamp to one unit instead of panicking.
        let degenerate = ResourcePool::new(0, 0, 0, 0);
        assert_eq!(degenerate.units(StageKind::Transfer), 1);
        assert_eq!(degenerate.units(StageKind::Decode), 1);
    }
}
