//! `flexlevel-sim` — command-line trace-driven SSD simulation.
//!
//! ```text
//! USAGE:
//!   flexlevel-sim [--scheme S] [--workload W] [--pe N] [--blocks N]
//!                 [--requests N] [--seed N] [--all-schemes]
//!                 [--timing single|pipelined] [--dies N] [--decoders N]
//!                 [--faults] [--fault-scale X] [--fault-seed N]
//!                 [--scrub-interval N]
//!
//!   --scheme S      baseline | ldpc | la-only | flexlevel   (default flexlevel)
//!   --workload W    fin-2 | web-1 | web-2 | prj-1 | prj-2 | win-1 | win-2
//!                   (default fin-2)
//!   --pe N          starting P/E cycles (default 6000)
//!   --blocks N      device size in blocks of 1 MB (default 128)
//!   --requests N    trace length (default 30000)
//!   --seed N        RNG seed (default 42)
//!   --timing M      single (lumped queue) | pipelined (discrete-event,
//!                   per-stage sense/transfer/decode)      (default single)
//!   --dies N        dies per channel (pipelined model only, default 4)
//!   --decoders N    controller LDPC decoder slots (pipelined, default 2)
//!   --all-schemes   run all four systems and print a comparison
//!   --faults        enable deterministic fault injection + recovery
//!   --fault-scale X FER acceleration multiplier (default 1.0)
//!   --fault-seed N  fault-stream seed (default model seed)
//!   --scrub-interval N   host requests between patrol-scrub visits
//!                        (0 disables the scrubber)
//! ```

use rand::{rngs::StdRng, SeedableRng};
use reliability::EccConfig;
use ssd::{FaultConfig, Scheme, SimStats, SsdConfig, SsdSimulator, StageKind, TimingModel};
use workloads::WorkloadSpec;

struct Args {
    scheme: Scheme,
    workload: String,
    pe: u32,
    blocks: u32,
    requests: u64,
    seed: u64,
    channels: u32,
    timing: TimingModel,
    dies: u32,
    decoders: u32,
    all_schemes: bool,
    faults: bool,
    fault_scale: f64,
    fault_seed: Option<u64>,
    scrub_interval: Option<u64>,
}

impl Args {
    fn fault_config(&self) -> FaultConfig {
        let mut faults = FaultConfig::enabled().with_scale(self.fault_scale);
        if let Some(seed) = self.fault_seed {
            faults = faults.with_seed(seed);
        }
        if let Some(interval) = self.scrub_interval {
            faults = faults.with_scrub_interval(interval);
        }
        faults
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scheme: Scheme::FlexLevel,
        workload: "fin-2".to_string(),
        pe: 6000,
        blocks: 128,
        requests: 30_000,
        seed: 42,
        channels: 1,
        timing: TimingModel::SingleQueue,
        dies: 4,
        decoders: 2,
        all_schemes: false,
        faults: false,
        fault_scale: 1.0,
        fault_seed: None,
        scrub_interval: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--scheme" => {
                args.scheme = match value("--scheme")?.as_str() {
                    "baseline" => Scheme::Baseline,
                    "ldpc" => Scheme::LdpcInSsd,
                    "la-only" => Scheme::LevelAdjustOnly,
                    "flexlevel" => Scheme::FlexLevel,
                    other => return Err(format!("unknown scheme '{other}'")),
                }
            }
            "--workload" => args.workload = value("--workload")?,
            "--pe" => args.pe = value("--pe")?.parse().map_err(|e| format!("--pe: {e}"))?,
            "--blocks" => {
                args.blocks = value("--blocks")?
                    .parse()
                    .map_err(|e| format!("--blocks: {e}"))?
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--channels" => {
                args.channels = value("--channels")?
                    .parse()
                    .map_err(|e| format!("--channels: {e}"))?
            }
            "--timing" => {
                args.timing = match value("--timing")?.as_str() {
                    "single" | "single-queue" => TimingModel::SingleQueue,
                    "pipelined" | "pipeline" => TimingModel::Pipelined,
                    other => return Err(format!("unknown timing model '{other}'")),
                }
            }
            "--dies" => {
                args.dies = value("--dies")?
                    .parse()
                    .map_err(|e| format!("--dies: {e}"))?
            }
            "--decoders" => {
                args.decoders = value("--decoders")?
                    .parse()
                    .map_err(|e| format!("--decoders: {e}"))?
            }
            "--all-schemes" => args.all_schemes = true,
            "--faults" => args.faults = true,
            "--fault-scale" => {
                args.fault_scale = value("--fault-scale")?
                    .parse()
                    .map_err(|e| format!("--fault-scale: {e}"))?
            }
            "--fault-seed" => {
                args.fault_seed = Some(
                    value("--fault-seed")?
                        .parse()
                        .map_err(|e| format!("--fault-seed: {e}"))?,
                )
            }
            "--scrub-interval" => {
                args.scrub_interval = Some(
                    value("--scrub-interval")?
                        .parse()
                        .map_err(|e| format!("--scrub-interval: {e}"))?,
                )
            }
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn print_usage() {
    println!(
        "flexlevel-sim — trace-driven SSD simulation of the FlexLevel schemes\n\n\
         USAGE: flexlevel-sim [--scheme baseline|ldpc|la-only|flexlevel]\n\
                [--workload fin-2|web-1|web-2|prj-1|prj-2|win-1|win-2]\n\
                [--pe N] [--blocks N] [--requests N] [--seed N]\n\
                [--channels N] [--timing single|pipelined] [--dies N]\n\
                [--decoders N] [--all-schemes] [--faults]\n\
                [--fault-scale X] [--fault-seed N] [--scrub-interval N]"
    );
}

fn workload_by_name(name: &str) -> Option<WorkloadSpec> {
    WorkloadSpec::paper_suite()
        .into_iter()
        .find(|s| s.name == name)
}

fn print_recovery_panel(stats: &SimStats) {
    println!(
        "  recovery           : {} retried reads ({} recovered / {} uncorrectable)",
        stats.retry_reads, stats.recovered_reads, stats.uncorrectable_reads
    );
    let depth = stats.max_retry_depth();
    let histogram: Vec<String> = stats.retry_depth_histogram[1..=depth.max(1)]
        .iter()
        .enumerate()
        .map(|(i, n)| format!("d{}:{n}", i + 1))
        .collect();
    println!("  retry depths       : {}", histogram.join(" "));
    println!(
        "  grown bad blocks   : {} retired ({} program failures)",
        stats.retired_blocks, stats.program_failures
    );
    println!(
        "  patrol scrub       : {} runs, {} reads, {} refreshes",
        stats.scrub_runs, stats.scrub_reads, stats.scrub_refreshes
    );
    println!("  die resets         : {}", stats.die_resets);
    println!(
        "  recovery latency   : {:.0} us total",
        stats.recovery_latency_us
    );
    println!(
        "  observed UBER      : {:.3e} ({} frames decoded)",
        stats.observed_uber(EccConfig::paper_ldpc().info_bits),
        stats.decoded_frames()
    );
}

/// Runs one scheme and prints its report; returns `false` if the
/// simulation failed (the caller finishes the remaining schemes and
/// exits non-zero at the end).
fn run_one(scheme: Scheme, args: &Args, trace: &workloads::Trace) -> bool {
    let mut config = SsdConfig::scaled(scheme, args.blocks)
        .with_base_pe(args.pe)
        .with_seed(args.seed)
        .with_channels(args.channels)
        .with_timing_model(args.timing)
        .with_dies_per_channel(args.dies)
        .with_decoder_slots(args.decoders);
    if args.faults {
        config = config.with_faults(args.fault_config());
    }
    let mut sim = SsdSimulator::new(config);
    match sim.run(trace) {
        Ok(stats) => {
            println!("--- {} ---", scheme.label());
            println!("  mean response      : {}", stats.mean_response());
            println!("  mean read response : {}", stats.mean_read_response());
            println!(
                "  host requests      : {} ({} reads / {} writes)",
                stats.host_requests(),
                stats.host_reads,
                stats.host_writes
            );
            println!("  buffer read hits   : {}", stats.buffer_read_hits);
            println!("  reduced-page reads : {}", stats.reduced_reads);
            println!(
                "  soft-read fraction : {:.1}%",
                stats.soft_read_fraction() * 100.0
            );
            println!(
                "  flash ops          : {} reads, {} programs, {} erases",
                stats.flash_reads, stats.flash_programs, stats.erases
            );
            println!(
                "  GC                 : {} runs, {} pages moved",
                stats.gc_runs, stats.gc_migrated_pages
            );
            if scheme == Scheme::FlexLevel {
                println!(
                    "  AccessEval         : {} promotions, {} demotions",
                    stats.promotions, stats.demotions
                );
            }
            if args.faults {
                print_recovery_panel(stats);
            }
            if args.timing == TimingModel::Pipelined {
                println!(
                    "  response p50/95/99 : {} / {} / {}",
                    stats.response_percentile(0.50),
                    stats.response_percentile(0.95),
                    stats.response_percentile(0.99)
                );
                println!(
                    "  makespan           : {:.0} us ({:.0} req/s)",
                    stats.makespan_us,
                    stats.throughput_rps()
                );
                let planes = args.channels * args.dies;
                for kind in StageKind::ALL {
                    let units = match kind {
                        StageKind::Transfer => args.channels,
                        StageKind::Decode => args.decoders,
                        _ => planes,
                    };
                    let account = stats.stage(kind);
                    if account.ops == 0 {
                        continue;
                    }
                    println!(
                        "  stage {:<12} : {:>8} ops, mean {:>9}, wait {:>9}, util {:>5.1}%",
                        kind.label(),
                        account.ops,
                        account.mean_latency(),
                        account.mean_wait(),
                        stats.stage_utilization(kind, units) * 100.0
                    );
                }
            }
            true
        }
        Err(e) => {
            eprintln!("--- {} ---", scheme.label());
            eprintln!("  simulation failed  : {e}");
            false
        }
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            std::process::exit(2);
        }
    };
    let Some(spec) = workload_by_name(&args.workload) else {
        eprintln!("error: unknown workload '{}'", args.workload);
        std::process::exit(2);
    };
    let config = SsdConfig::scaled(Scheme::Baseline, args.blocks);
    let footprint = config.geometry.logical_pages() * 7 / 10;
    let trace = spec
        .with_requests(args.requests)
        .with_footprint(footprint)
        .with_interarrival_scale(2.2)
        .generate(&mut StdRng::seed_from_u64(args.seed));
    println!(
        "workload {} | {} requests | {:.0}% reads | footprint {} pages | P/E {}\n",
        trace.name,
        trace.len(),
        trace.read_fraction() * 100.0,
        trace.footprint_pages,
        args.pe
    );
    let mut failed = Vec::new();
    if args.all_schemes {
        for scheme in Scheme::ALL {
            if !run_one(scheme, &args, &trace) {
                failed.push(scheme.label());
            }
        }
    } else if !run_one(args.scheme, &args, &trace) {
        failed.push(args.scheme.label());
    }
    if !failed.is_empty() {
        eprintln!(
            "\nerror: {} scheme(s) failed: {}",
            failed.len(),
            failed.join(", ")
        );
        std::process::exit(1);
    }
}
