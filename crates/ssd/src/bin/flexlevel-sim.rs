//! `flexlevel-sim` — command-line trace-driven SSD simulation.
//!
//! ```text
//! USAGE:
//!   flexlevel-sim [--scheme S] [--workload W] [--pe N] [--blocks N]
//!                 [--requests N] [--seed N] [--all-schemes]
//!                 [--timing single|pipelined] [--dies N] [--decoders N]
//!                 [--faults] [--fault-scale X] [--fault-seed N]
//!                 [--scrub-interval N] [--scenario NAME] [--footprint N]
//!                 [--serve] [--tenants N] [--arrival-rate R[,R...]]
//!                 [--queue-depth N] [--slo-us X] [--overload drop|defer]
//!                 [--threads N]
//!
//!   --scheme S      baseline | ldpc | la-only | flexlevel   (default flexlevel)
//!   --scenario NAME run a named scenario preset (cell technology, fault
//!                   model, environment components); `--scenario baseline`
//!                   is the identity. Unknown names list the registry and
//!                   exit 2.
//!   --list-scenarios     print every registered scenario and exit
//!   --footprint N   trace footprint in pages (default 70% of capacity;
//!                   a footprint beyond capacity fails the run, exit 1)
//!   --workload W    fin-2 | web-1 | web-2 | prj-1 | prj-2 | win-1 | win-2
//!                   (default fin-2)
//!   --pe N          starting P/E cycles (default 6000)
//!   --blocks N      device size in blocks of 1 MB (default 128)
//!   --requests N    trace length (default 30000)
//!   --seed N        RNG seed (default 42)
//!   --timing M      single (lumped queue) | pipelined (discrete-event,
//!                   per-stage sense/transfer/decode)      (default single)
//!   --dies N        dies per channel (pipelined model only, default 4)
//!   --decoders N    controller LDPC decoder slots (pipelined, default 2)
//!   --all-schemes   run all four systems and print a comparison
//!   --faults        enable deterministic fault injection + recovery
//!   --fault-scale X FER acceleration multiplier (default 1.0)
//!   --fault-seed N  fault-stream seed (default model seed)
//!   --scrub-interval N   host requests between patrol-scrub visits
//!                        (0 disables the scrubber)
//!   --serve         multi-tenant open-loop serving instead of trace
//!                   replay: each tenant submits at its own rate into a
//!                   private Zipf working set; per-tenant QoS applies
//!   --tenants N     number of open-loop tenants (serve mode, default 2)
//!   --arrival-rate R[,R...]  per-tenant Poisson arrival rate in req/s;
//!                   a shorter list cycles across tenants (default 10000)
//!   --queue-depth N per-tenant in-flight cap; 0 = unlimited (default 0)
//!   --slo-us X      per-tenant response-time SLO target in µs;
//!                   0 disables violation counting (default 0)
//!   --overload M    drop (reject over-cap arrivals) | defer (hold them,
//!                   wait charged to response time)     (default drop)
//!   --threads N     worker threads for decode-farm / sweep fan-out;
//!                   0 = auto (FLEXLEVEL_THREADS or machine, default 0).
//!                   Never affects results, only wall-clock.
//!   --measured-iterations   calibrate the decode-latency model from the
//!                        real quantized decoder (layered schedule, one
//!                        decode-farm pass sized by --threads) instead
//!                        of the analytic iteration curve
//!   --checkpoint-out F   write a restorable device image to F (replay
//!                        mode, single scheme); the run stops at the
//!                        checkpoint unless --crash-at continues it
//!   --checkpoint-at N    checkpoint after N requests (default: half the
//!                        trace; 0 when combined with --crash-at)
//!   --crash-at N    sudden power-off while serving request N: the run
//!                   resumes past the checkpoint, power dies mid-request
//!                   (seeded mapping-journal cut, torn page when a program
//!                   was in flight) and the crash image lands in
//!                   --checkpoint-out
//!   --restore F     resume from a checkpoint or crash image; crash
//!                   images are first proven recoverable (journal replay
//!                   + invariant audit — exit 3 on a violation)
//!   --metrics-out F Prometheus text exposition of the run's metrics
//!                   (`-` = stdout)
//!   --trace-out F   Chrome trace_event JSON (load in Perfetto / about:tracing);
//!                   includes recovery/scrub instant events and the time
//!                   series as counter tracks
//!   --trace-jsonl F one JSON object per sampled read span
//!   --trace-sample N     keep a seeded reservoir of at most N spans
//!                        (0 = keep every span, the default)
//!   --series-out F  windowed time-series JSONL, one snapshot per line
//!                   (`-` = stdout): every counter as cumulative + window
//!                   delta, plus derived gauges, sampled each
//!                   --series-interval-us of simulated time. Keyed to sim
//!                   time only — bit-identical across --threads and both
//!                   --timing backends, and a --restore'd campaign's
//!                   series is byte-identical to an uninterrupted run's
//!   --series-interval-us N   window width in simulated µs (default 1000)
//!   --progress      one-line wall-clock heartbeat to stderr (~1/s):
//!                   sim time, ops, observed UBER, retry rate; works
//!                   during checkpointed/restored campaign runs
//! ```
//!
//! Any of the output flags (or `--all-schemes`, which sources its
//! comparison table from the metrics registry) attaches the observability
//! recorder; without them the simulator runs with observability fully
//! disabled — the zero-overhead default.

use flash_model::{Hours, LevelConfig};
use ldpc::{
    measure_iteration_profile, ChannelStress, FarmConfig, IterationProfile, LlrQuantizer,
    MlcReadChannel, PageKind, QcLdpcCode, QuantizedMinSumDecoder, Schedule, SoftSensingConfig,
};
use obs::{export, Recorder};
use rand::{rngs::StdRng, SeedableRng};
use reliability::EccConfig;
use ssd::{
    FaultConfig, OverloadPolicy, ScenarioSpec, Scheme, ServeOptions, SimObserver, SimStats,
    SsdConfig, SsdSimulator, StageKind, TenantQos, TimingModel,
};
use workloads::{OpenLoopSource, TenantWorkload, WorkloadSpec};

struct Args {
    scheme: Scheme,
    workload: String,
    pe: u32,
    blocks: u32,
    requests: u64,
    seed: u64,
    channels: u32,
    timing: TimingModel,
    dies: u32,
    decoders: u32,
    all_schemes: bool,
    faults: bool,
    fault_scale: f64,
    fault_seed: Option<u64>,
    scrub_interval: Option<u64>,
    scenario: Option<String>,
    footprint: Option<u64>,
    measured_iterations: bool,
    metrics_out: Option<String>,
    trace_out: Option<String>,
    trace_jsonl: Option<String>,
    trace_sample: usize,
    series_out: Option<String>,
    series_interval_us: u64,
    progress: bool,
    serve: bool,
    tenants: u32,
    arrival_rates: Vec<f64>,
    queue_depth: u32,
    slo_us: f64,
    overload: OverloadPolicy,
    threads: u32,
    checkpoint_out: Option<String>,
    checkpoint_at: Option<u64>,
    crash_at: Option<u64>,
    restore: Option<String>,
}

impl Args {
    fn fault_config(&self) -> FaultConfig {
        let mut faults = FaultConfig::enabled().with_scale(self.fault_scale);
        if let Some(seed) = self.fault_seed {
            faults = faults.with_seed(seed);
        }
        if let Some(interval) = self.scrub_interval {
            faults = faults.with_scrub_interval(interval);
        }
        faults
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scheme: Scheme::FlexLevel,
        workload: "fin-2".to_string(),
        pe: 6000,
        blocks: 128,
        requests: 30_000,
        seed: 42,
        channels: 1,
        timing: TimingModel::SingleQueue,
        dies: 4,
        decoders: 2,
        all_schemes: false,
        faults: false,
        fault_scale: 1.0,
        fault_seed: None,
        scrub_interval: None,
        scenario: None,
        footprint: None,
        measured_iterations: false,
        metrics_out: None,
        trace_out: None,
        trace_jsonl: None,
        trace_sample: 0,
        series_out: None,
        series_interval_us: 1000,
        progress: false,
        serve: false,
        tenants: 2,
        arrival_rates: vec![10_000.0],
        queue_depth: 0,
        slo_us: 0.0,
        overload: OverloadPolicy::Drop,
        threads: 0,
        checkpoint_out: None,
        checkpoint_at: None,
        crash_at: None,
        restore: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--scheme" => {
                args.scheme = match value("--scheme")?.as_str() {
                    "baseline" => Scheme::Baseline,
                    "ldpc" => Scheme::LdpcInSsd,
                    "la-only" => Scheme::LevelAdjustOnly,
                    "flexlevel" => Scheme::FlexLevel,
                    other => return Err(format!("unknown scheme '{other}'")),
                }
            }
            "--workload" => args.workload = value("--workload")?,
            "--pe" => args.pe = value("--pe")?.parse().map_err(|e| format!("--pe: {e}"))?,
            "--blocks" => {
                args.blocks = value("--blocks")?
                    .parse()
                    .map_err(|e| format!("--blocks: {e}"))?
            }
            "--requests" => {
                args.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--channels" => {
                args.channels = value("--channels")?
                    .parse()
                    .map_err(|e| format!("--channels: {e}"))?
            }
            "--timing" => {
                args.timing = match value("--timing")?.as_str() {
                    "single" | "single-queue" => TimingModel::SingleQueue,
                    "pipelined" | "pipeline" => TimingModel::Pipelined,
                    other => return Err(format!("unknown timing model '{other}'")),
                }
            }
            "--dies" => {
                args.dies = value("--dies")?
                    .parse()
                    .map_err(|e| format!("--dies: {e}"))?
            }
            "--decoders" => {
                args.decoders = value("--decoders")?
                    .parse()
                    .map_err(|e| format!("--decoders: {e}"))?
            }
            "--all-schemes" => args.all_schemes = true,
            "--faults" => args.faults = true,
            "--fault-scale" => {
                args.fault_scale = value("--fault-scale")?
                    .parse()
                    .map_err(|e| format!("--fault-scale: {e}"))?
            }
            "--fault-seed" => {
                args.fault_seed = Some(
                    value("--fault-seed")?
                        .parse()
                        .map_err(|e| format!("--fault-seed: {e}"))?,
                )
            }
            "--scrub-interval" => {
                args.scrub_interval = Some(
                    value("--scrub-interval")?
                        .parse()
                        .map_err(|e| format!("--scrub-interval: {e}"))?,
                )
            }
            "--scenario" => {
                let name = value("--scenario")?;
                if ScenarioSpec::find(&name).is_none() {
                    return Err(format!(
                        "unknown scenario '{name}' (valid: {})",
                        ScenarioSpec::names().join(", ")
                    ));
                }
                args.scenario = Some(name);
            }
            "--list-scenarios" => {
                for spec in ScenarioSpec::registry() {
                    println!("{:<18} {}", spec.name, spec.summary);
                }
                std::process::exit(0);
            }
            "--footprint" => {
                args.footprint = Some(
                    value("--footprint")?
                        .parse()
                        .map_err(|e| format!("--footprint: {e}"))?,
                )
            }
            "--serve" => args.serve = true,
            "--tenants" => {
                args.tenants = value("--tenants")?
                    .parse()
                    .map_err(|e| format!("--tenants: {e}"))?;
                if args.tenants == 0 {
                    return Err("--tenants must be at least 1".to_string());
                }
            }
            "--arrival-rate" => {
                args.arrival_rates = value("--arrival-rate")?
                    .split(',')
                    .map(|r| {
                        r.trim()
                            .parse::<f64>()
                            .map_err(|e| format!("--arrival-rate: {e}"))
                            .and_then(|rate| {
                                if rate.is_finite() && rate > 0.0 {
                                    Ok(rate)
                                } else {
                                    Err(format!("--arrival-rate: {rate} is not a positive rate"))
                                }
                            })
                    })
                    .collect::<Result<Vec<f64>, String>>()?;
                if args.arrival_rates.is_empty() {
                    return Err("--arrival-rate needs at least one rate".to_string());
                }
            }
            "--queue-depth" => {
                args.queue_depth = value("--queue-depth")?
                    .parse()
                    .map_err(|e| format!("--queue-depth: {e}"))?
            }
            "--slo-us" => {
                args.slo_us = value("--slo-us")?
                    .parse()
                    .map_err(|e| format!("--slo-us: {e}"))?
            }
            "--overload" => {
                args.overload = match value("--overload")?.as_str() {
                    "drop" => OverloadPolicy::Drop,
                    "defer" => OverloadPolicy::Defer,
                    other => return Err(format!("unknown overload policy '{other}'")),
                }
            }
            "--threads" => {
                args.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--measured-iterations" => args.measured_iterations = true,
            "--checkpoint-out" => args.checkpoint_out = Some(value("--checkpoint-out")?),
            "--checkpoint-at" => {
                args.checkpoint_at = Some(
                    value("--checkpoint-at")?
                        .parse()
                        .map_err(|e| format!("--checkpoint-at: {e}"))?,
                )
            }
            "--crash-at" => {
                args.crash_at = Some(
                    value("--crash-at")?
                        .parse()
                        .map_err(|e| format!("--crash-at: {e}"))?,
                )
            }
            "--restore" => args.restore = Some(value("--restore")?),
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")?),
            "--trace-out" => args.trace_out = Some(value("--trace-out")?),
            "--trace-jsonl" => args.trace_jsonl = Some(value("--trace-jsonl")?),
            "--trace-sample" => {
                args.trace_sample = value("--trace-sample")?
                    .parse()
                    .map_err(|e| format!("--trace-sample: {e}"))?
            }
            "--series-out" => args.series_out = Some(value("--series-out")?),
            "--series-interval-us" => {
                args.series_interval_us = value("--series-interval-us")?
                    .parse()
                    .map_err(|e| format!("--series-interval-us: {e}"))?;
                if args.series_interval_us == 0 {
                    return Err("--series-interval-us must be at least 1".to_string());
                }
            }
            "--progress" => args.progress = true,
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}' (try --help)")),
        }
    }
    if args.checkpoint_at.is_some() && args.checkpoint_out.is_none() {
        return Err("--checkpoint-at requires --checkpoint-out".to_string());
    }
    if args.crash_at.is_some() && args.checkpoint_out.is_none() {
        return Err("--crash-at requires --checkpoint-out".to_string());
    }
    if args.restore.is_some() && (args.checkpoint_out.is_some() || args.crash_at.is_some()) {
        return Err("--restore cannot be combined with --checkpoint-out / --crash-at".to_string());
    }
    if (args.restore.is_some() || args.checkpoint_out.is_some()) && (args.serve || args.all_schemes)
    {
        return Err(
            "checkpoint/restore runs one scheme in replay mode (no --serve, no --all-schemes)"
                .to_string(),
        );
    }
    if let (Some(metrics), Some(series)) = (args.metrics_out.as_deref(), args.series_out.as_deref())
    {
        if metrics == series {
            return Err(if metrics == "-" {
                "--metrics-out - and --series-out - would interleave two formats on stdout"
                    .to_string()
            } else {
                format!(
                    "--metrics-out and --series-out both write to '{metrics}'; \
                     the second would overwrite the first"
                )
            });
        }
    }
    Ok(args)
}

fn print_usage() {
    println!(
        "flexlevel-sim — trace-driven SSD simulation of the FlexLevel schemes\n\n\
         USAGE: flexlevel-sim [--scheme baseline|ldpc|la-only|flexlevel]\n\
                [--workload fin-2|web-1|web-2|prj-1|prj-2|win-1|win-2]\n\
                [--pe N] [--blocks N] [--requests N] [--seed N]\n\
                [--channels N] [--timing single|pipelined] [--dies N]\n\
                [--decoders N] [--all-schemes] [--faults]\n\
                [--fault-scale X] [--fault-seed N] [--scrub-interval N]\n\
                [--scenario NAME] [--list-scenarios] [--footprint N]\n\
                [--serve] [--tenants N] [--arrival-rate R[,R...]]\n\
                [--queue-depth N] [--slo-us X] [--overload drop|defer]\n\
                [--threads N] [--measured-iterations]\n\
                [--checkpoint-out image.bin] [--checkpoint-at N]\n\
                [--crash-at N] [--restore image.bin]\n\
                [--metrics-out metrics.prom] [--trace-out trace.json]\n\
                [--trace-jsonl spans.jsonl] [--trace-sample N]\n\
                [--series-out series.jsonl] [--series-interval-us N]\n\
                [--progress]\n\n\
         Time series / introspection:\n\
           --series-out F      windowed snapshot JSONL (one line per\n\
                               window; '-' = stdout), sampled every\n\
                               --series-interval-us of simulated time\n\
                               (default 1000); deterministic across\n\
                               --threads, --timing and --restore\n\
           --progress          wall-clock heartbeat to stderr (~1/s)\n\n\
         Checkpoint / sudden power-off (replay mode, single scheme):\n\
           --checkpoint-out F  stop after --checkpoint-at requests (default\n\
                               half the trace) and write the device image\n\
           --crash-at N        resume past the checkpoint, cut power while\n\
                               serving request N (seeded journal cut, torn\n\
                               page), write the crash image to F\n\
           --restore F         load F, prove crash recovery (journal replay\n\
                               + invariant audit), resume to the end\n\
         Exit codes: 0 ok, 1 simulation/IO/decode failure, 2 usage,\n\
                     3 post-recovery invariant violation"
    );
}

fn workload_by_name(name: &str) -> Option<WorkloadSpec> {
    WorkloadSpec::paper_suite()
        .into_iter()
        .find(|s| s.name == name)
}

fn print_recovery_panel(stats: &SimStats) {
    println!(
        "  recovery           : {} retried reads ({} recovered / {} uncorrectable)",
        stats.retry_reads, stats.recovered_reads, stats.uncorrectable_reads
    );
    let depth = stats.max_retry_depth();
    let histogram: Vec<String> = stats.retry_depth_histogram[1..=depth.max(1)]
        .iter()
        .enumerate()
        .map(|(i, n)| format!("d{}:{n}", i + 1))
        .collect();
    println!("  retry depths       : {}", histogram.join(" "));
    println!(
        "  grown bad blocks   : {} retired ({} program failures)",
        stats.retired_blocks, stats.program_failures
    );
    println!(
        "  patrol scrub       : {} runs, {} reads, {} refreshes",
        stats.scrub_runs, stats.scrub_reads, stats.scrub_refreshes
    );
    println!("  die resets         : {}", stats.die_resets);
    println!(
        "  recovery latency   : {:.0} us total",
        stats.recovery_latency_us
    );
    println!(
        "  observed UBER      : {:.3e} ({} frames decoded)",
        stats.observed_uber(EccConfig::paper_ldpc().info_bits),
        stats.decoded_frames()
    );
    print_crash_recovery_lines(stats);
}

/// The crash-recovery counters, printed only after a `--restore` of a
/// crash image (all three stay zero otherwise).
fn print_crash_recovery_lines(stats: &SimStats) {
    if stats.journal_replayed == 0
        && stats.torn_pages_discarded == 0
        && stats.checkpoint_age_requests == 0
    {
        return;
    }
    println!(
        "  crash recovery     : {} journal records replayed, {} torn pages discarded",
        stats.journal_replayed, stats.torn_pages_discarded
    );
    println!(
        "  checkpoint age     : {} requests",
        stats.checkpoint_age_requests
    );
}

/// Builds the configuration for one scheme from the CLI flags; returns
/// it together with whether fault injection ended up enabled (scenario
/// presets can switch faults on without `--faults`).
fn build_config(
    scheme: Scheme,
    args: &Args,
    measured: Option<IterationProfile>,
) -> (SsdConfig, bool) {
    let mut config = SsdConfig::scaled(scheme, args.blocks)
        .with_base_pe(args.pe)
        .with_seed(args.seed)
        .with_channels(args.channels)
        .with_timing_model(args.timing)
        .with_dies_per_channel(args.dies)
        .with_decoder_slots(args.decoders)
        .with_threads(args.threads);
    if let Some(profile) = measured {
        config = config.with_measured_iterations(profile);
    }
    if args.faults {
        config = config.with_faults(args.fault_config());
    }
    // The scenario preset applies last so its overrides (cell technology,
    // fault model, environment) win over the generic flags.
    if let Some(name) = args.scenario.as_deref() {
        let spec = ScenarioSpec::find(name).expect("scenario validated at parse time");
        config = spec.apply(config);
    }
    let faulty = config.faults.enabled;
    (config, faulty)
}

/// Builds the observer the CLI flags ask for: span sampling always,
/// plus the windowed time series and the progress heartbeat on demand.
fn build_observer(scheme: Scheme, args: &Args) -> SimObserver {
    let mut observer = SimObserver::new(scheme, args.trace_sample);
    if args.series_out.is_some() {
        observer = observer.with_series(args.series_interval_us);
    }
    if args.progress {
        observer = observer.with_progress();
    }
    observer
}

/// Builds the simulator for one scheme from the CLI flags; see
/// [`build_config`] for the `bool`.
fn build_simulator(
    scheme: Scheme,
    args: &Args,
    measured: Option<IterationProfile>,
    observe: bool,
) -> (SsdSimulator, bool) {
    let (config, faulty) = build_config(scheme, args, measured);
    let mut sim = SsdSimulator::new(config);
    if observe {
        sim.attach_observer(build_observer(scheme, args));
    }
    (sim, faulty)
}

/// Runs one scheme and prints its report; returns `None` if the
/// simulation failed (the caller finishes the remaining schemes and
/// exits non-zero at the end) and the recorded observability data
/// otherwise (`Some(None)` when observability is off).
fn run_one(
    scheme: Scheme,
    args: &Args,
    trace: &workloads::Trace,
    observe: bool,
    measured: Option<IterationProfile>,
) -> Option<Option<Recorder>> {
    let (mut sim, faulty) = build_simulator(scheme, args, measured, observe);
    match sim.run(trace) {
        Ok(_) => {
            print_report(scheme, args, sim.stats(), faulty);
            Some(sim.take_observer().map(SimObserver::into_recorder))
        }
        Err(e) => {
            eprintln!("--- {} ---", scheme.label());
            eprintln!("  simulation failed  : {e}");
            None
        }
    }
}

/// The replay-mode report for one completed scheme.
fn print_report(scheme: Scheme, args: &Args, stats: &SimStats, faulty: bool) {
    println!("--- {} ---", scheme.label());
    println!("  mean response      : {}", stats.mean_response());
    println!("  mean read response : {}", stats.mean_read_response());
    println!(
        "  host requests      : {} ({} reads / {} writes)",
        stats.host_requests(),
        stats.host_reads,
        stats.host_writes
    );
    println!("  buffer read hits   : {}", stats.buffer_read_hits);
    println!("  reduced-page reads : {}", stats.reduced_reads);
    println!(
        "  soft-read fraction : {:.1}%",
        stats.soft_read_fraction() * 100.0
    );
    println!(
        "  flash ops          : {} reads, {} programs, {} erases",
        stats.flash_reads, stats.flash_programs, stats.erases
    );
    println!(
        "  GC                 : {} runs, {} pages moved",
        stats.gc_runs, stats.gc_migrated_pages
    );
    if scheme == Scheme::FlexLevel {
        println!(
            "  AccessEval         : {} promotions, {} demotions",
            stats.promotions, stats.demotions
        );
    }
    if faulty {
        print_recovery_panel(stats);
    } else {
        print_crash_recovery_lines(stats);
    }
    if args.timing == TimingModel::Pipelined {
        println!(
            "  response p50/95/99 : {} / {} / {}",
            stats.response_percentile(0.50),
            stats.response_percentile(0.95),
            stats.response_percentile(0.99)
        );
        println!(
            "  makespan           : {:.0} us ({:.0} req/s)",
            stats.makespan_us,
            stats.throughput_rps()
        );
        let planes = args.channels * args.dies;
        for kind in StageKind::ALL {
            let units = match kind {
                StageKind::Transfer => args.channels,
                StageKind::Decode => args.decoders,
                _ => planes,
            };
            let account = stats.stage(kind);
            if account.ops == 0 {
                continue;
            }
            println!(
                "  stage {:<12} : {:>8} ops, mean {:>9}, wait {:>9}, util {:>5.1}%",
                kind.label(),
                account.ops,
                account.mean_latency(),
                account.mean_wait(),
                stats.stage_utilization(kind, units) * 100.0
            );
        }
    }
}

/// The open-loop tenant profiles for `--serve`: the device footprint is
/// split into disjoint per-tenant working sets, each inheriting the named
/// workload's read mix, Zipf skew and request sizes, with `--requests`
/// divided evenly across tenants and each tenant submitting Poisson
/// arrivals at its `--arrival-rate` entry (a shorter list cycles).
fn tenant_profiles(args: &Args, spec: &WorkloadSpec, footprint: u64) -> Vec<TenantWorkload> {
    let working_set = (footprint / u64::from(args.tenants)).max(1);
    let per_tenant_requests = (args.requests / u64::from(args.tenants)).max(1);
    (0..args.tenants)
        .map(|t| {
            let rate = args.arrival_rates[t as usize % args.arrival_rates.len()];
            TenantWorkload::new(u64::from(t) * working_set, working_set, rate)
                .with_read_fraction(spec.read_fraction)
                .with_zipf_theta(spec.zipf_theta)
                .with_mean_request_pages(spec.mean_request_pages)
                .with_requests(per_tenant_requests)
        })
        .collect()
}

/// Runs one scheme in `--serve` mode (multi-tenant open-loop generator
/// through the QoS scheduler) and prints the per-tenant report. Same
/// return contract as [`run_one`].
fn run_serve(
    scheme: Scheme,
    args: &Args,
    spec: &WorkloadSpec,
    footprint: u64,
    observe: bool,
    measured: Option<IterationProfile>,
) -> Option<Option<Recorder>> {
    let (mut sim, _) = build_simulator(scheme, args, measured, observe);
    let mut source = OpenLoopSource::new(tenant_profiles(args, spec, footprint), args.seed);
    let qos = TenantQos::default()
        .with_queue_depth(args.queue_depth)
        .with_policy(args.overload)
        .with_slo_us(args.slo_us);
    let options = ServeOptions::uniform(args.tenants, qos);
    match sim.serve(&mut source, &options) {
        Ok(_) => {
            let stats = sim.stats();
            println!("--- {} ---", scheme.label());
            println!("  mean response      : {}", stats.mean_response());
            println!(
                "  host requests      : {} ({} reads / {} writes)",
                stats.host_requests(),
                stats.host_reads,
                stats.host_writes
            );
            let (mut dropped, mut deferred) = (0u64, 0u64);
            for (t, tenant) in stats.tenants.iter().enumerate() {
                println!(
                    "  tenant {t} p50/p99/p999 : {} / {} / {}",
                    tenant.p50(),
                    tenant.p99(),
                    tenant.p999()
                );
                println!(
                    "  tenant {t} requests     : {} arrivals, {} served, {} dropped, {} deferred",
                    tenant.arrivals, tenant.served, tenant.dropped, tenant.deferred
                );
                if tenant.slo_target_us > 0.0 {
                    println!(
                        "  tenant {t} SLO          : {} violations ({:.2}% of served, target {:.0} us)",
                        tenant.slo_violations,
                        tenant.slo_violation_rate() * 100.0,
                        tenant.slo_target_us
                    );
                }
                dropped += tenant.dropped;
                deferred += tenant.deferred;
            }
            println!("  backpressure       : {dropped} dropped, {deferred} deferred");
            if args.timing == TimingModel::Pipelined {
                println!(
                    "  makespan           : {:.0} us ({:.0} req/s)",
                    stats.makespan_us,
                    stats.throughput_rps()
                );
            }
            Some(sim.take_observer().map(SimObserver::into_recorder))
        }
        Err(e) => {
            eprintln!("--- {} ---", scheme.label());
            eprintln!("  serving failed     : {e}");
            None
        }
    }
}

/// Appends one row to a comparison table.
fn push_row(rows: &mut Vec<(String, Vec<String>)>, title: &str, cells: Vec<String>) {
    rows.push((title.to_string(), cells));
}

/// Renders a `(metric, per-scheme cell)` table with aligned columns.
fn render_table(header: &[&str], rows: &[(String, Vec<String>)]) -> String {
    let metric_width = rows
        .iter()
        .map(|(t, _)| t.len())
        .chain(std::iter::once("metric".len()))
        .max()
        .unwrap_or(6);
    let col_widths: Vec<usize> = header
        .iter()
        .enumerate()
        .map(|(c, h)| {
            rows.iter()
                .map(|(_, cells)| cells[c].len())
                .chain(std::iter::once(h.len()))
                .max()
                .unwrap_or(1)
        })
        .collect();
    let mut out = String::new();
    out.push_str(&format!("{:<metric_width$}", "metric"));
    for (c, h) in header.iter().enumerate() {
        out.push_str(&format!("  {:>width$}", h, width = col_widths[c]));
    }
    out.push('\n');
    for (title, cells) in rows {
        out.push_str(&format!("{title:<metric_width$}"));
        for (c, cell) in cells.iter().enumerate() {
            out.push_str(&format!("  {:>width$}", cell, width = col_widths[c]));
        }
        out.push('\n');
    }
    out
}

/// The `--all-schemes` comparison table, sourced entirely from the merged
/// metrics registry snapshot (not from ad-hoc `SimStats` plumbing).
fn comparison_table(recorder: &Recorder, schemes: &[Scheme], args: &Args) -> String {
    let reg = &recorder.metrics;
    let labels: Vec<Vec<(&str, &str)>> = schemes
        .iter()
        .map(|s| vec![("scheme", s.label())])
        .collect();
    let counter_cells = |name: &str| -> Vec<String> {
        labels
            .iter()
            .map(|l| match reg.find_counter(name, l) {
                Some(v) => v.to_string(),
                None => "-".to_string(),
            })
            .collect()
    };
    let gauge_cells = |name: &str, precision: usize| -> Vec<String> {
        labels
            .iter()
            .map(|l| match reg.find_gauge(name, l) {
                Some(v) => format!("{v:.precision$}"),
                None => "-".to_string(),
            })
            .collect()
    };
    let quantile_cells = |name: &str, q: f64| -> Vec<String> {
        labels
            .iter()
            .map(|l| match reg.find_histogram(name, l) {
                Some(h) if h.count() > 0 => format!("{:.1}", h.quantile(q)),
                _ => "-".to_string(),
            })
            .collect()
    };
    let mut rows = Vec::new();
    push_row(
        &mut rows,
        "mean response (us)",
        gauge_cells("flexlevel_mean_response_us", 1),
    );
    push_row(
        &mut rows,
        "mean read response (us)",
        gauge_cells("flexlevel_mean_read_response_us", 1),
    );
    push_row(
        &mut rows,
        "p50 response (us)",
        quantile_cells("flexlevel_response_us", 0.50),
    );
    push_row(
        &mut rows,
        "p99 response (us)",
        quantile_cells("flexlevel_response_us", 0.99),
    );
    push_row(
        &mut rows,
        "p99 sensing levels",
        quantile_cells("flexlevel_sensing_levels", 0.99),
    );
    push_row(
        &mut rows,
        "host reads",
        counter_cells("flexlevel_host_reads_total"),
    );
    push_row(
        &mut rows,
        "host writes",
        counter_cells("flexlevel_host_writes_total"),
    );
    push_row(
        &mut rows,
        "buffer read hits",
        counter_cells("flexlevel_buffer_read_hits_total"),
    );
    push_row(
        &mut rows,
        "reduced-page reads",
        counter_cells("flexlevel_reduced_reads_total"),
    );
    push_row(
        &mut rows,
        "flash reads",
        counter_cells("flexlevel_flash_reads_total"),
    );
    push_row(
        &mut rows,
        "flash programs",
        counter_cells("flexlevel_flash_programs_total"),
    );
    push_row(&mut rows, "erases", counter_cells("flexlevel_erases_total"));
    push_row(
        &mut rows,
        "GC runs",
        counter_cells("flexlevel_gc_runs_total"),
    );
    push_row(
        &mut rows,
        "GC pages moved",
        counter_cells("flexlevel_gc_migrated_pages_total"),
    );
    push_row(
        &mut rows,
        "promotions",
        counter_cells("flexlevel_promotions_total"),
    );
    push_row(
        &mut rows,
        "demotions",
        counter_cells("flexlevel_demotions_total"),
    );
    push_row(
        &mut rows,
        "soft-read fraction",
        gauge_cells("flexlevel_soft_read_fraction", 3),
    );
    push_row(
        &mut rows,
        "write amplification",
        gauge_cells("flexlevel_write_amplification", 2),
    );
    if args.faults {
        push_row(
            &mut rows,
            "retry reads",
            counter_cells("flexlevel_retry_reads_total"),
        );
        push_row(
            &mut rows,
            "recovered reads",
            counter_cells("flexlevel_recovered_reads_total"),
        );
        push_row(
            &mut rows,
            "uncorrectable reads",
            counter_cells("flexlevel_uncorrectable_reads_total"),
        );
        push_row(
            &mut rows,
            "p99 retry depth",
            quantile_cells("flexlevel_retry_depth", 0.99),
        );
    }
    if args.timing == TimingModel::Pipelined {
        push_row(
            &mut rows,
            "throughput (req/s)",
            gauge_cells("flexlevel_throughput_rps", 0),
        );
        push_row(
            &mut rows,
            "makespan (us)",
            gauge_cells("flexlevel_makespan_us", 0),
        );
    }
    let header: Vec<&str> = schemes.iter().map(|s| s.label()).collect();
    render_table(&header, &rows)
}

/// Per-stage × per-scheme latency breakdown (pipelined model), sourced
/// from the per-execution stage histograms.
fn stage_panel(recorder: &Recorder, schemes: &[Scheme]) -> String {
    let reg = &recorder.metrics;
    let mut rows = Vec::new();
    for kind in StageKind::ALL {
        for metric in ["busy", "wait"] {
            let name = format!("flexlevel_stage_{metric}_us");
            let cells: Vec<String> = schemes
                .iter()
                .map(|s| {
                    let labels = [("scheme", s.label()), ("stage", kind.label())];
                    match reg.find_histogram(&name, &labels) {
                        Some(h) if h.count() > 0 => {
                            format!("{:.1}/{:.1}", h.quantile(0.50), h.quantile(0.99))
                        }
                        _ => "-".to_string(),
                    }
                })
                .collect();
            if cells.iter().all(|c| c == "-") {
                continue;
            }
            push_row(
                &mut rows,
                &format!("{} {metric} p50/p99 (us)", kind.label()),
                cells,
            );
        }
    }
    if rows.is_empty() {
        return String::new();
    }
    let header: Vec<&str> = schemes.iter().map(|s| s.label()).collect();
    render_table(&header, &rows)
}

/// Per-scheme critical-path attribution: where the sampled reads' time
/// goes (queue / sense / transfer / decode / retry / die reset / other
/// wait), for the mean read and for the p99 tail — answering "where
/// does p99 go" directly from the recorded spans.
fn attribution_panel(recorder: &Recorder, schemes: &[Scheme]) -> String {
    let spans = recorder.spans.sorted_spans();
    let attributions = obs::critical_path(&spans);
    if attributions.is_empty() {
        return String::new();
    }
    let find = |s: Scheme| attributions.iter().find(|a| a.scheme == s.label());
    let mut rows = Vec::new();
    push_row(
        &mut rows,
        "sampled reads (tail)",
        schemes
            .iter()
            .map(|&s| {
                find(s).map_or("-".to_string(), |a| {
                    format!("{} ({})", a.reads, a.tail_reads)
                })
            })
            .collect(),
    );
    push_row(
        &mut rows,
        "p99 threshold (us)",
        schemes
            .iter()
            .map(|&s| find(s).map_or("-".to_string(), |a| format!("{:.1}", a.p99_threshold_us)))
            .collect(),
    );
    type Get = fn(&obs::PathComponents) -> f64;
    let components: [(&str, Get); 7] = [
        ("queue", |c| c.queue_us),
        ("sense", |c| c.sense_us),
        ("transfer", |c| c.transfer_us),
        ("decode", |c| c.decode_us),
        ("retry", |c| c.retry_us),
        ("die reset", |c| c.die_reset_us),
        ("wait", |c| c.wait_us),
    ];
    for (name, get) in components {
        let cells: Vec<String> = schemes
            .iter()
            .map(|&s| {
                find(s).map_or("-".to_string(), |a| {
                    format!("{:.1}/{:.1}", get(&a.mean), get(&a.tail))
                })
            })
            .collect();
        if cells.iter().all(|c| c == "-" || c == "0.0/0.0") {
            continue;
        }
        push_row(&mut rows, &format!("{name} mean/tail (us)"), cells);
    }
    let header: Vec<&str> = schemes.iter().map(|s| s.label()).collect();
    render_table(&header, &rows)
}

/// Calibrates the decode-latency iteration profile with the real
/// quantized decoder (`--measured-iterations`): all sensing depths'
/// frames go through one [`DecodeFarm`](ldpc::DecodeFarm) queue on the
/// layered schedule the hardware model assumes. Farm workers come from
/// the unified thread knob (`--threads`, falling back to
/// `FLEXLEVEL_THREADS` or the machine when 0) — worker count never
/// affects the measured profile, only wall-clock. The stress point is
/// the run's starting P/E at one month of retention — the harsh corner
/// the paper's Table 5 ladder is measured at. Deterministic in `--seed`.
fn calibrate_iteration_profile(args: &Args) -> IterationProfile {
    const TRIALS_PER_LEVEL: u32 = 16;
    let code = QcLdpcCode::paper_code();
    let decoder = QuantizedMinSumDecoder::new().with_schedule(Schedule::Layered);
    let stress = ChannelStress::retention(args.pe, Hours::months(1.0));
    let (profile, ladder) = measure_iteration_profile(
        &code,
        &decoder,
        &LlrQuantizer::default(),
        (IterationProfile::SLOTS - 1) as u32,
        TRIALS_PER_LEVEL,
        args.seed,
        FarmConfig::default().with_workers(args.threads),
        |extra| {
            MlcReadChannel::build_cached(
                &LevelConfig::normal_mlc(),
                PageKind::Lower,
                stress,
                SoftSensingConfig::soft(extra),
                20_000,
                args.seed ^ 0xCA11_B8A7 ^ u64::from(extra),
            )
        },
    );
    let means: Vec<String> = ladder
        .iter()
        .map(|rung| format!("{}:{:.1}", rung.extra_levels, rung.mean_iterations))
        .collect();
    println!(
        "measured iteration profile (P/E {}, 1 month, layered, {} frames/level): {}\n",
        args.pe,
        TRIALS_PER_LEVEL,
        means.join(" ")
    );
    profile
}

/// The checkpoint / sudden-power-off / restore flows (`--checkpoint-out`,
/// `--crash-at`, `--restore`); returns the process exit code.
///
/// Exit codes: `0` success, `1` simulation/IO/decode failure, `3` a
/// crash image whose recovered state fails the invariant audit.
fn run_spor(
    args: &Args,
    trace: &workloads::Trace,
    measured: Option<IterationProfile>,
    observe: bool,
) -> i32 {
    use ssd::{CrashPlan, DeviceImage, PageMapFtl, SimError};
    let scheme = args.scheme;
    if let Some(path) = args.restore.as_deref() {
        let image = match DeviceImage::load(path) {
            Ok(image) => image,
            Err(e) => {
                eprintln!("error: loading {path}: {e}");
                return 1;
            }
        };
        if let Err(e) = image.verify_trace(trace) {
            eprintln!("error: {e}");
            return 1;
        }
        let crashed = image.crashed_at.is_some() || !image.journal.is_empty();
        let mut recovery = None;
        if crashed {
            // Crash-consistency proof: replay the surviving journal onto
            // the checkpoint-time FTL and audit the result before the
            // deterministic re-execution resumes.
            let (recovered, report) =
                match PageMapFtl::recover(&image.ftl, &image.journal, image.torn) {
                    Ok(outcome) => outcome,
                    Err(e) => {
                        eprintln!("error: crash recovery failed: {e}");
                        return 3;
                    }
                };
            if let Err(e) = recovered.check_invariants() {
                eprintln!("error: post-recovery invariant violated: {e}");
                return 3;
            }
            let age = image
                .crashed_at
                .map_or(0, |at| (at + 1).saturating_sub(image.request_cursor));
            if let Some(at) = image.crashed_at {
                println!("crash image: power was lost while serving request {at}");
            }
            println!("recovered journal entries : {}", report.journal_replayed);
            println!(
                "torn pages discarded      : {}",
                report.torn_pages_discarded
            );
            println!("checkpoint age            : {age} requests\n");
            recovery = Some((report, age));
        }
        let (config, faulty) = build_config(scheme, args, measured);
        let mut sim = match SsdSimulator::restore(config, &image) {
            Ok(sim) => sim,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        };
        if observe {
            // `attach_observer` hands the image's time-series state to
            // the fresh observer, so the resumed series continues the
            // checkpointed run's mid-window.
            sim.attach_observer(build_observer(scheme, args));
        }
        if let Some((report, age)) = recovery {
            sim.note_recovery(&report, age);
        }
        match sim.resume(trace) {
            Ok(_) => {
                print_report(scheme, args, sim.stats(), faulty);
                if let Some(observer) = sim.take_observer() {
                    write_exports(args, &observer.into_recorder());
                }
                0
            }
            Err(e) => {
                eprintln!("error: resumed run failed: {e}");
                1
            }
        }
    } else {
        let path = args
            .checkpoint_out
            .as_deref()
            .expect("flags validated at parse time");
        let stop = args.checkpoint_at.unwrap_or(if args.crash_at.is_some() {
            0
        } else {
            args.requests / 2
        });
        if let Some(crash_at) = args.crash_at {
            if crash_at < stop {
                eprintln!("error: --crash-at {crash_at} precedes the checkpoint at {stop}");
                return 2;
            }
        }
        let (config, _) = build_config(scheme, args, measured);
        let mut sim = SsdSimulator::new(config);
        if observe {
            // The prefix run's unflushed time-series state rides the
            // checkpoint image (exports themselves only happen on
            // completed runs).
            sim.attach_observer(build_observer(scheme, args));
        }
        if let Err(e) = sim.run_prefix(trace, stop) {
            eprintln!("error: {e}");
            return 1;
        }
        let mut image = match sim.checkpoint() {
            Ok(image) => image,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        };
        image.trace_fingerprint = ssd::trace_fingerprint(trace);
        match args.crash_at {
            None => {
                if let Err(e) = image.save(path) {
                    eprintln!("error: writing {path}: {e}");
                    return 1;
                }
                println!("checkpoint after {stop} requests written to {path}");
                println!("resume with: flexlevel-sim --restore {path} (same flags)");
                0
            }
            Some(crash_at) => {
                sim.set_crash_plan(Some(CrashPlan::at_request(args.seed, crash_at)));
                match sim.resume(trace) {
                    Err(SimError::PowerLoss { at_request }) => {
                        let crash = match sim.crash_image(&image) {
                            Ok(crash) => crash,
                            Err(e) => {
                                eprintln!("error: {e}");
                                return 1;
                            }
                        };
                        if let Err(e) = crash.save(path) {
                            eprintln!("error: writing {path}: {e}");
                            return 1;
                        }
                        let appended = sim.ftl().journal().map_or(0, <[_]>::len);
                        println!(
                            "power lost serving request {at_request}: {} of {appended} \
                             journal records survived{}",
                            crash.journal.len(),
                            if crash.torn.is_some() {
                                ", one torn page"
                            } else {
                                ""
                            }
                        );
                        println!("crash image written to {path}");
                        0
                    }
                    Ok(_) => {
                        eprintln!(
                            "error: --crash-at {crash_at} never fired ({} requests served)",
                            sim.request_cursor()
                        );
                        1
                    }
                    Err(e) => {
                        eprintln!("error: {e}");
                        1
                    }
                }
            }
        }
    }
}

/// Writes `contents` to `path` (`-` = stdout, no trailer note), exiting
/// with a message on failure.
fn write_output(path: &str, contents: &str, what: &str) {
    if path == "-" {
        use std::io::Write;
        if let Err(e) = std::io::stdout().write_all(contents.as_bytes()) {
            eprintln!("error: writing {what} to stdout: {e}");
            std::process::exit(1);
        }
        return;
    }
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: writing {what} to {path}: {e}");
        std::process::exit(1);
    }
    println!("wrote {what} to {path}");
}

/// Writes every requested observability artifact from `recorder`.
fn write_exports(args: &Args, recorder: &Recorder) {
    if let Some(path) = args.metrics_out.as_deref() {
        write_output(path, &export::prometheus(&recorder.metrics), "metrics");
    }
    if let Some(path) = args.trace_out.as_deref() {
        write_output(
            path,
            &export::chrome_trace_full(&recorder.spans, &recorder.series),
            "chrome trace",
        );
    }
    if let Some(path) = args.trace_jsonl.as_deref() {
        write_output(path, &export::span_jsonl(&recorder.spans), "span jsonl");
    }
    if let Some(path) = args.series_out.as_deref() {
        write_output(path, &export::series_jsonl(&recorder.series), "time series");
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            print_usage();
            std::process::exit(2);
        }
    };
    let Some(spec) = workload_by_name(&args.workload) else {
        eprintln!("error: unknown workload '{}'", args.workload);
        std::process::exit(2);
    };
    let config = SsdConfig::scaled(Scheme::Baseline, args.blocks);
    let footprint = args
        .footprint
        .unwrap_or(config.geometry.logical_pages() * 7 / 10);
    let trace = (!args.serve).then(|| {
        spec.clone()
            .with_requests(args.requests)
            .with_footprint(footprint)
            .with_interarrival_scale(2.2)
            .generate(&mut StdRng::seed_from_u64(args.seed))
    });
    match trace.as_ref() {
        Some(trace) => println!(
            "workload {} | {} requests | {:.0}% reads | footprint {} pages | P/E {}\n",
            trace.name,
            trace.len(),
            trace.read_fraction() * 100.0,
            trace.footprint_pages,
            args.pe
        ),
        None => {
            let rates: Vec<String> = (0..args.tenants)
                .map(|t| {
                    format!(
                        "{:.0}",
                        args.arrival_rates[t as usize % args.arrival_rates.len()]
                    )
                })
                .collect();
            println!(
                "serving {} profile | {} tenants @ {} req/s | qd {} ({}) | \
                 {} requests | footprint {} pages | P/E {}\n",
                spec.name,
                args.tenants,
                rates.join("/"),
                args.queue_depth,
                args.overload.label(),
                args.requests,
                footprint,
                args.pe
            );
        }
    }
    // Observability is attached when an export was requested, or when the
    // multi-scheme comparison table (sourced from the registry) will run.
    let observe = args.metrics_out.is_some()
        || args.trace_out.is_some()
        || args.trace_jsonl.is_some()
        || args.series_out.is_some()
        || args.progress
        || args.all_schemes;
    let schemes: Vec<Scheme> = if args.all_schemes {
        Scheme::ALL.to_vec()
    } else {
        vec![args.scheme]
    };
    let measured = args
        .measured_iterations
        .then(|| calibrate_iteration_profile(&args));
    if args.checkpoint_out.is_some() || args.restore.is_some() {
        let trace = trace.as_ref().expect("checkpoint/restore is replay-only");
        std::process::exit(run_spor(&args, trace, measured, observe));
    }
    let mut failed = Vec::new();
    // Recorders merge in scheme order — a fixed order, so the combined
    // registry and trace are independent of anything but the runs.
    let mut combined: Option<Recorder> = None;
    for &scheme in &schemes {
        let outcome = match trace.as_ref() {
            Some(trace) => run_one(scheme, &args, trace, observe, measured),
            None => run_serve(scheme, &args, &spec, footprint, observe, measured),
        };
        match outcome {
            None => failed.push(scheme.label()),
            Some(None) => {}
            Some(Some(recorder)) => match combined.as_mut() {
                Some(c) => c.merge(&recorder),
                None => combined = Some(recorder),
            },
        }
    }
    if let Some(recorder) = combined.as_ref() {
        if args.all_schemes {
            println!("\n=== scheme comparison (from metrics registry) ===");
            print!("{}", comparison_table(recorder, &schemes, &args));
            if args.timing == TimingModel::Pipelined {
                let panel = stage_panel(recorder, &schemes);
                if !panel.is_empty() {
                    println!("\n=== per-stage latency breakdown (pipelined) ===");
                    print!("{panel}");
                }
            }
            let panel = attribution_panel(recorder, &schemes);
            if !panel.is_empty() {
                println!("\n=== critical-path attribution (sampled reads, where p99 goes) ===");
                print!("{panel}");
            }
        }
        write_exports(&args, recorder);
    }
    if !failed.is_empty() {
        eprintln!(
            "\nerror: {} scheme(s) failed: {}",
            failed.len(),
            failed.join(", ")
        );
        std::process::exit(1);
    }
}
