//! Hybrid log-block FTL (FAST-style), page-granular.
//!
//! FlashSim — the simulator the paper builds on — ships three FTL
//! schemes: page-mapping, block-mapping and the FAST hybrid. The paper
//! evaluates on page mapping (the only scheme compatible with
//! FlexLevel's page-level ReducedCell pool); this module provides the
//! hybrid alternative for FTL studies and write-amplification
//! comparisons:
//!
//! * **Data blocks** are block-mapped: logical block `n` lives in one
//!   physical block, pages in order.
//! * **Updates** append to a small set of fully-associative **log
//!   blocks** tracked with a page-level map.
//! * When log space runs out, the FTL performs a **full merge** of the
//!   logical block with the most log pages: valid pages from the data
//!   block and the logs are copied into a fresh block, and the stale
//!   copies are erased — the costly operation that gives hybrid FTLs
//!   their characteristic write amplification on random workloads.

use std::collections::HashMap;

use flash_model::{BlockId, DeviceGeometry, PhysicalPage};

use crate::ftl::{FtlError, OpCost};

/// The hybrid (FAST-style) FTL.
///
/// Normal-mode blocks only: hybrid mapping is incompatible with
/// FlexLevel's page-level reduced pool, which is why the paper (and the
/// simulator's schemes) use page mapping.
#[derive(Debug, Clone)]
pub struct HybridFtl {
    geometry: DeviceGeometry,
    /// Logical block → physical data block (None until first written).
    data_blocks: Vec<Option<BlockId>>,
    /// Page-level map for log-resident pages: lpn → physical page.
    log_map: HashMap<u64, PhysicalPage>,
    /// Valid flags per data block slot: `data_valid[lb][page]`.
    data_valid: Vec<Vec<bool>>,
    /// Free physical blocks.
    free: Vec<BlockId>,
    /// Open log blocks with their fill level.
    logs: Vec<(BlockId, u32)>,
    /// How many log blocks the FTL may hold open.
    max_log_blocks: usize,
    /// Per-physical-block erase counts.
    erases: Vec<u32>,
    /// Which lpns live in each log block (for merge victim selection).
    log_contents: HashMap<BlockId, Vec<u64>>,
}

impl HybridFtl {
    /// Creates a hybrid FTL over `geometry` with `max_log_blocks` log
    /// blocks. Logical capacity is block-granular:
    /// `floor(logical_pages / pages_per_block)` logical blocks.
    pub fn new(geometry: DeviceGeometry, max_log_blocks: usize) -> HybridFtl {
        let logical_blocks =
            (geometry.logical_pages() / geometry.pages_per_block() as u64) as usize;
        HybridFtl {
            geometry,
            data_blocks: vec![None; logical_blocks],
            log_map: HashMap::new(),
            data_valid: vec![vec![false; geometry.pages_per_block() as usize]; logical_blocks],
            free: geometry.block_ids().collect(),
            logs: Vec::new(),
            max_log_blocks: max_log_blocks.max(1),
            erases: vec![0; geometry.blocks() as usize],
            log_contents: HashMap::new(),
        }
    }

    /// Exported logical capacity in pages.
    pub fn logical_pages(&self) -> u64 {
        self.data_blocks.len() as u64 * self.geometry.pages_per_block() as u64
    }

    /// Total erases performed.
    pub fn total_erases(&self) -> u64 {
        self.erases.iter().map(|&e| e as u64).sum()
    }

    fn split(&self, lpn: u64) -> (usize, u32) {
        let ppb = self.geometry.pages_per_block() as u64;
        ((lpn / ppb) as usize, (lpn % ppb) as u32)
    }

    /// Where `lpn` currently lives, if anywhere.
    pub fn placement(&self, lpn: u64) -> Option<PhysicalPage> {
        if let Some(&phys) = self.log_map.get(&lpn) {
            return Some(phys);
        }
        let (lb, offset) = self.split(lpn);
        if *self.data_valid.get(lb)?.get(offset as usize)? {
            self.data_blocks[lb].map(|b| PhysicalPage::new(b, offset))
        } else {
            None
        }
    }

    /// Writes `lpn`, appending to a log block (or writing the data block
    /// in place on first touch of an unwritten slot... flash forbids
    /// in-place rewrites, so every write after the first goes to a log).
    ///
    /// # Errors
    ///
    /// [`FtlError::LpnOutOfRange`] or [`FtlError::OutOfSpace`].
    pub fn write(&mut self, lpn: u64) -> Result<OpCost, FtlError> {
        if lpn >= self.logical_pages() {
            return Err(FtlError::LpnOutOfRange { lpn });
        }
        let mut cost = OpCost::default();
        let (lb, offset) = self.split(lpn);

        // Invalidate any previous copy, remembering that it existed: a
        // slot that ever held data cannot be programmed in place again.
        let had_log_copy = self.log_map.remove(&lpn).is_some();
        let had_data_copy = self.data_valid[lb][offset as usize];
        if had_data_copy {
            self.data_valid[lb][offset as usize] = false;
        }

        // Fresh slot in a block-mapped data block? Sequential first
        // writes fill the data block directly.
        if self.data_blocks[lb].is_none() {
            let block = self.take_free(&mut cost)?;
            self.data_blocks[lb] = Some(block);
        }
        let data_block = self.data_blocks[lb].expect("assigned above");
        let can_write_in_place =
            !had_log_copy && !had_data_copy && self.slot_never_programmed(data_block, lb, offset);
        if can_write_in_place {
            self.data_valid[lb][offset as usize] = true;
            cost.programs += 1;
            return Ok(cost);
        }

        // Append to a log block.
        let (log_block, slot) = self.log_slot(&mut cost)?;
        self.log_map.insert(lpn, PhysicalPage::new(log_block, slot));
        self.log_contents.entry(log_block).or_default().push(lpn);
        cost.programs += 1;
        Ok(cost)
    }

    /// A data-block slot is programmable in place only if it has never
    /// been programmed since the block's last erase. This simplified
    /// model treats a slot as fresh when it is invalid *and* no log copy
    /// exists; strictly sequential fills satisfy it.
    fn slot_never_programmed(&self, _block: BlockId, lb: usize, offset: u32) -> bool {
        // Once any page of the block was superseded (went to a log), the
        // in-place window for that slot is over. Conservative but sound:
        // we only allow in-place writes while the slot has never held
        // data, which we approximate as "currently invalid and the block
        // has no log pages for that slot".
        !self.data_valid[lb][offset as usize]
            && !self
                .log_contents
                .values()
                .flatten()
                .any(|&l| self.split(l) == (lb, offset))
    }

    fn take_free(&mut self, cost: &mut OpCost) -> Result<BlockId, FtlError> {
        if self.free.is_empty() {
            self.merge(cost)?;
        }
        self.free.pop().ok_or(FtlError::OutOfSpace)
    }

    /// Returns an open log slot, opening a new log block (or merging) as
    /// needed. Merges proactively while a free-block reserve remains, so
    /// the merge itself never deadlocks on an empty free pool.
    fn log_slot(&mut self, cost: &mut OpCost) -> Result<(BlockId, u32), FtlError> {
        let ppb = self.geometry.pages_per_block();
        if let Some(entry) = self.logs.iter_mut().find(|(_, fill)| *fill < ppb) {
            let slot = entry.1;
            entry.1 += 1;
            return Ok((entry.0, slot));
        }
        while self.logs.len() >= self.max_log_blocks || self.free.len() <= 1 {
            self.merge(cost)?;
        }
        let block = self.take_free(cost)?;
        self.logs.push((block, 1));
        Ok((block, 0))
    }

    /// FAST-style merge: take the oldest log block as the victim, fully
    /// merge every logical block that still has live pages in it, then
    /// reclaim the (now fully stale) victim. Net effect: at least one
    /// block returns to the free pool.
    fn merge(&mut self, cost: &mut OpCost) -> Result<(), FtlError> {
        cost.gc_runs += 1;
        let Some(&(victim_log, _)) = self.logs.first() else {
            return Err(FtlError::OutOfSpace); // nothing mergeable
        };
        let lpns = self.log_contents.remove(&victim_log).unwrap_or_default();
        let mut victim_lbs: Vec<usize> = lpns
            .iter()
            .filter(|l| self.log_map.get(l).map(|p| p.block) == Some(victim_log))
            .map(|l| self.split(*l).0)
            .collect();
        victim_lbs.sort_unstable();
        victim_lbs.dedup();
        for lb in victim_lbs {
            self.full_merge(lb, cost)?;
        }
        // The victim's remaining entries were stale; reclaim it.
        self.logs.retain(|(b, _)| *b != victim_log);
        self.erases[victim_log.0 as usize] += 1;
        cost.erases += 1;
        self.free.push(victim_log);
        Ok(())
    }

    /// Consolidates all live pages of logical block `lb` (data block +
    /// any log blocks) into a fresh physical block.
    fn full_merge(&mut self, lb: usize, cost: &mut OpCost) -> Result<(), FtlError> {
        let fresh = self.free.pop().ok_or(FtlError::OutOfSpace)?;
        let ppb = self.geometry.pages_per_block() as u64;
        for offset in 0..ppb {
            let lpn = lb as u64 * ppb + offset;
            let in_log = self.log_map.remove(&lpn).is_some();
            let in_data = self.data_valid[lb][offset as usize];
            if in_log || in_data {
                cost.flash_reads += 1;
                cost.programs += 1;
                cost.gc_moved += 1;
                self.data_valid[lb][offset as usize] = true;
            }
        }
        // Erase and free the superseded data block.
        if let Some(old) = self.data_blocks[lb].replace(fresh) {
            self.erases[old.0 as usize] += 1;
            cost.erases += 1;
            self.free.push(old);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftl::PageMapFtl;
    use flash_model::CellMode;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn hybrid() -> HybridFtl {
        HybridFtl::new(DeviceGeometry::scaled(16).unwrap(), 3)
    }

    #[test]
    fn capacity_is_block_granular() {
        let f = hybrid();
        // 16 blocks × 64 pages × 73% = 747 logical pages → 11 blocks.
        assert_eq!(f.logical_pages(), 11 * 64);
    }

    #[test]
    fn sequential_fill_writes_in_place() {
        let mut f = hybrid();
        let mut cost = OpCost::default();
        for lpn in 0..f.logical_pages() {
            cost.add(f.write(lpn).unwrap());
        }
        // A pure sequential fill needs exactly one program per page and
        // no merges.
        assert_eq!(cost.programs, f.logical_pages());
        assert_eq!(cost.erases, 0);
        assert_eq!(cost.gc_runs, 0);
        for lpn in (0..f.logical_pages()).step_by(53) {
            assert!(f.placement(lpn).is_some());
        }
    }

    #[test]
    fn updates_go_to_logs_then_merge() {
        let mut f = hybrid();
        for lpn in 0..f.logical_pages() {
            f.write(lpn).unwrap();
        }
        let mut cost = OpCost::default();
        // Hammer one logical block with updates: log space (3 blocks ×
        // 64 pages) absorbs 192 updates, then merges kick in.
        for round in 0..6 {
            for lpn in 0..64u64 {
                cost.add(
                    f.write(lpn)
                        .unwrap_or_else(|e| panic!("round {round}: {e}")),
                );
            }
        }
        assert!(cost.gc_runs > 0, "merges must have happened");
        assert!(cost.erases > 0);
        // Every page still resolves.
        for lpn in 0..64u64 {
            assert!(f.placement(lpn).is_some(), "lpn {lpn}");
        }
    }

    #[test]
    fn out_of_range_rejected() {
        let mut f = hybrid();
        let lpn = f.logical_pages();
        assert_eq!(f.write(lpn), Err(FtlError::LpnOutOfRange { lpn }));
    }

    #[test]
    fn hybrid_amplifies_random_writes_more_than_page_mapping() {
        // The classic result FlashSim was built to show: under random
        // updates, FAST-style merges cost far more programs/erases than
        // page mapping's greedy GC.
        let geometry = DeviceGeometry::scaled(16).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let updates: Vec<u64> = (0..6_000).map(|_| rng.gen_range(0..640)).collect();

        let mut page = PageMapFtl::new(geometry, 4);
        let mut page_cost = OpCost::default();
        for &lpn in &updates {
            page_cost.add(page.write(lpn, CellMode::Normal).unwrap());
        }

        let mut hybrid = HybridFtl::new(geometry, 3);
        // Preload the touched region sequentially (block-mapped layout).
        for lpn in 0..640 {
            hybrid.write(lpn).unwrap();
        }
        let mut hybrid_cost = OpCost::default();
        for &lpn in &updates {
            hybrid_cost.add(hybrid.write(lpn).unwrap());
        }

        assert!(
            hybrid_cost.programs > page_cost.programs,
            "hybrid programs {} must exceed page-mapping {}",
            hybrid_cost.programs,
            page_cost.programs
        );
        assert!(
            hybrid_cost.erases >= page_cost.erases,
            "hybrid erases {} vs page-mapping {}",
            hybrid_cost.erases,
            page_cost.erases
        );
    }

    #[test]
    fn sequential_rewrites_are_cheap_for_hybrid() {
        // Hybrid FTLs shine on sequential overwrites: whole-block
        // rewrites merge cleanly (switch-merge-like behaviour emerges as
        // one merge per block instead of per page).
        let mut f = hybrid();
        for lpn in 0..f.logical_pages() {
            f.write(lpn).unwrap();
        }
        let mut cost = OpCost::default();
        for lpn in 0..f.logical_pages() {
            cost.add(f.write(lpn).unwrap());
        }
        let rewrite_amplification = cost.programs as f64 / f.logical_pages() as f64;
        assert!(
            rewrite_amplification < 3.0,
            "sequential rewrite amplification {rewrite_amplification}"
        );
    }
}
