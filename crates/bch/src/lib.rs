//! Binary BCH error correction over `GF(2^m)`.
//!
//! The hard-decision ECC generation that protected 3Xnm NAND flash — and
//! that the FlexLevel paper's introduction explains is no longer
//! sufficient at 2Xnm bit error rates, motivating soft-decision LDPC.
//! This crate provides the real thing, not a model: Galois-field
//! arithmetic with primitive-polynomial tables ([`GaloisField`]),
//! generator construction from cyclotomic cosets, systematic LFSR
//! encoding, and syndrome → Berlekamp–Massey → Chien-search decoding
//! ([`BchCode`]), with shortening to NAND chunk sizes.
//!
//! The `bench` crate's `exp_motivation` binary uses it to reproduce the
//! paper's opening argument: the BCH strength (and parity overhead)
//! needed to hit the 1e-15 UBER target diverges as the raw BER approaches
//! 1e-2, while LDPC with soft sensing keeps working.
//!
//! # Example
//!
//! ```
//! use bch::{BchCode, BchDecode};
//!
//! # fn main() -> Result<(), bch::BchError> {
//! let code = BchCode::new(10, 4, 256)?;
//! let info = vec![1u8; 256];
//! let mut word = code.encode(&info);
//! word[17] ^= 1; // one bit error
//! assert!(matches!(code.decode(&mut word), BchDecode::Corrected(_)));
//! assert_eq!(&word[..256], &info[..]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod code;
pub mod gf;

pub use code::{BchCode, BchDecode, BchError};
pub use gf::{FieldError, GaloisField};
