//! BCH code construction, encoding and decoding.
//!
//! A binary primitive BCH code of length `n = 2^m − 1` correcting `t`
//! errors has generator polynomial `g(x) = lcm(M_1, M_3, …, M_{2t−1})`
//! (the minimal polynomials of the first `2t` powers of α). Encoding is
//! systematic polynomial division; decoding is the classic
//! syndromes → Berlekamp–Massey → Chien-search pipeline.
//!
//! Codes are *shortened* to the requested information length by fixing
//! leading information bits to zero, exactly as NAND controllers shorten
//! BCH to page-chunk sizes.

use serde::{Deserialize, Serialize};

use crate::gf::{FieldError, GaloisField};

/// Errors constructing a BCH code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BchError {
    /// Underlying field construction failed.
    Field(FieldError),
    /// `t` must be at least 1.
    ZeroCorrection,
    /// The requested information bits don't fit: `info + parity > n`.
    InfoTooLong {
        /// Requested information bits.
        info_bits: usize,
        /// Maximum information bits for this `(m, t)`.
        max: usize,
    },
}

impl From<FieldError> for BchError {
    fn from(e: FieldError) -> BchError {
        BchError::Field(e)
    }
}

impl std::fmt::Display for BchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BchError::Field(e) => write!(f, "{e}"),
            BchError::ZeroCorrection => write!(f, "BCH needs t >= 1"),
            BchError::InfoTooLong { info_bits, max } => {
                write!(
                    f,
                    "information length {info_bits} exceeds the maximum {max}"
                )
            }
        }
    }
}

impl std::error::Error for BchError {}

/// Outcome of a BCH decode attempt.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BchDecode {
    /// The word was a codeword (no errors detected).
    Clean,
    /// `corrected` bit positions were flipped in place.
    Corrected(Vec<usize>),
    /// More than `t` errors: decoding failed (detected, uncorrectable).
    Uncorrectable,
}

/// A (shortened) binary BCH code.
///
/// ```
/// use bch::BchCode;
///
/// // A t=4 code over GF(2^10) shortened to 512 information bits.
/// let code = BchCode::new(10, 4, 512).unwrap();
/// let mut word = code.encode(&vec![1u8; 512]);
/// word[3] ^= 1;
/// word[500] ^= 1;
/// match code.decode(&mut word) {
///     bch::BchDecode::Corrected(pos) => assert_eq!(pos.len(), 2),
///     other => panic!("expected correction, got {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BchCode {
    gf: GaloisField,
    t: u32,
    info_bits: usize,
    /// Generator polynomial over GF(2), lowest degree first.
    generator: Vec<u8>,
}

impl BchCode {
    /// Builds a `t`-error-correcting BCH code over `GF(2^m)` shortened to
    /// `info_bits` information bits.
    ///
    /// # Errors
    ///
    /// [`BchError`] if the field degree is unsupported, `t == 0`, or the
    /// information length exceeds `2^m − 1 − deg g`.
    pub fn new(m: u32, t: u32, info_bits: usize) -> Result<BchCode, BchError> {
        if t == 0 {
            return Err(BchError::ZeroCorrection);
        }
        let gf = GaloisField::new(m)?;
        // g(x) = lcm of minimal polynomials of α^1 .. α^{2t}; odd powers
        // suffice because conjugates share cosets.
        let mut covered = std::collections::HashSet::new();
        let mut generator = vec![1u8];
        for s in (1..2 * t).step_by(2) {
            let coset = gf.cyclotomic_coset(s);
            if covered.contains(&coset[0]) {
                continue;
            }
            covered.insert(coset[0]);
            let mp = gf.minimal_polynomial(s);
            generator = poly_mul_gf2(&generator, &mp);
        }
        let parity = generator.len() - 1;
        let max_info = gf.order() as usize - parity;
        if info_bits > max_info {
            return Err(BchError::InfoTooLong {
                info_bits,
                max: max_info,
            });
        }
        Ok(BchCode {
            gf,
            t,
            info_bits,
            generator,
        })
    }

    /// The paper-relevant configuration: BCH over GF(2^15) protecting one
    /// 2 KB chunk (16 384 information bits) with strength `t` —
    /// controllers split a 4 KB page into two such chunks.
    pub fn nand_2kb(t: u32) -> Result<BchCode, BchError> {
        BchCode::new(15, t, 2048 * 8)
    }

    /// Designed correction capability `t`.
    pub fn correction_capability(&self) -> u32 {
        self.t
    }

    /// Information bits `k`.
    pub fn info_bits(&self) -> usize {
        self.info_bits
    }

    /// Parity bits (`deg g`).
    pub fn parity_bits(&self) -> usize {
        self.generator.len() - 1
    }

    /// Shortened codeword length `k + deg g`.
    pub fn codeword_bits(&self) -> usize {
        self.info_bits + self.parity_bits()
    }

    /// Code rate `k / (k + parity)`.
    pub fn rate(&self) -> f64 {
        self.info_bits as f64 / self.codeword_bits() as f64
    }

    /// Systematic encode: returns `[info | parity]` (one bit per byte).
    ///
    /// # Panics
    ///
    /// Panics if `info.len() != info_bits()`.
    pub fn encode(&self, info: &[u8]) -> Vec<u8> {
        assert_eq!(info.len(), self.info_bits, "information length mismatch");
        let parity_len = self.parity_bits();
        // remainder of info(x) · x^parity  mod  g(x), computed LFSR-style.
        let mut rem = vec![0u8; parity_len];
        for &bit in info {
            let feedback = (bit & 1) ^ rem[parity_len - 1];
            // Shift left by one (towards higher degree).
            for i in (1..parity_len).rev() {
                rem[i] = rem[i - 1] ^ (feedback & self.generator[i]);
            }
            rem[0] = feedback & self.generator[0];
        }
        let mut out = Vec::with_capacity(self.codeword_bits());
        out.extend_from_slice(info);
        out.extend(rem.iter().rev().map(|&b| b & 1));
        out
    }

    /// Maps a shortened codeword position to the exponent used in
    /// syndrome/Chien arithmetic. Bit 0 of the stored word is the
    /// highest-degree position of the unshortened code.
    fn position_exponent(&self, pos: usize) -> u64 {
        (self.codeword_bits() - 1 - pos) as u64
    }

    /// Computes the 2t syndromes of a received word.
    fn syndromes(&self, word: &[u8]) -> Vec<u32> {
        let mut syndromes = vec![0u32; 2 * self.t as usize];
        for (pos, &bit) in word.iter().enumerate() {
            if bit & 1 == 0 {
                continue;
            }
            let e = self.position_exponent(pos);
            for (j, s) in syndromes.iter_mut().enumerate() {
                *s ^= self.gf.alpha_pow(e * (j as u64 + 1));
            }
        }
        syndromes
    }

    /// Decodes (and corrects) `word` in place.
    ///
    /// # Panics
    ///
    /// Panics if `word.len() != codeword_bits()`.
    pub fn decode(&self, word: &mut [u8]) -> BchDecode {
        assert_eq!(word.len(), self.codeword_bits(), "codeword length mismatch");
        let syndromes = self.syndromes(word);
        if syndromes.iter().all(|&s| s == 0) {
            return BchDecode::Clean;
        }
        // Berlekamp–Massey: find the error locator Λ(x).
        let locator = self.berlekamp_massey(&syndromes);
        let errors = locator.len() - 1;
        if errors == 0 || errors > self.t as usize {
            return BchDecode::Uncorrectable;
        }
        // Chien search over the shortened positions: position `pos` is in
        // error iff Λ(α^{-e(pos)}) = 0.
        let mut positions = Vec::new();
        for pos in 0..word.len() {
            let e = self.position_exponent(pos);
            let x = self.gf.alpha_pow(
                (self.gf.order() as u64 - e % self.gf.order() as u64) % self.gf.order() as u64,
            );
            if self.gf.eval_poly(&locator, x) == 0 {
                positions.push(pos);
            }
        }
        if positions.len() != errors {
            // Locator degree didn't match the found roots: > t errors.
            return BchDecode::Uncorrectable;
        }
        for &pos in &positions {
            word[pos] ^= 1;
        }
        // Re-verify: a miscorrection beyond design distance is caught here.
        if self.syndromes(word).iter().any(|&s| s != 0) {
            for &pos in &positions {
                word[pos] ^= 1; // restore
            }
            return BchDecode::Uncorrectable;
        }
        BchDecode::Corrected(positions)
    }

    /// Berlekamp–Massey over GF(2^m): returns Λ(x) coefficients, lowest
    /// degree first (Λ(0) = 1).
    fn berlekamp_massey(&self, syndromes: &[u32]) -> Vec<u32> {
        let gf = &self.gf;
        let n = syndromes.len();
        let mut lambda = vec![0u32; n + 1];
        let mut prev = vec![0u32; n + 1];
        lambda[0] = 1;
        prev[0] = 1;
        let mut l = 0usize; // current register length
        let mut shift = 1usize; // x^shift multiplier for prev
        let mut prev_discrepancy = 1u32;
        for k in 0..n {
            // discrepancy d = S_k + Σ λ_i S_{k-i}
            let mut d = syndromes[k];
            for i in 1..=l {
                d ^= gf.mul(lambda[i], syndromes[k - i]);
            }
            if d == 0 {
                shift += 1;
            } else if 2 * l <= k {
                let old_lambda = lambda.clone();
                let scale = gf.div(d, prev_discrepancy);
                for i in 0..=n - shift {
                    let term = gf.mul(scale, prev[i]);
                    lambda[i + shift] ^= term;
                }
                l = k + 1 - l;
                prev = old_lambda;
                prev_discrepancy = d;
                shift = 1;
            } else {
                let scale = gf.div(d, prev_discrepancy);
                for i in 0..=n - shift {
                    let term = gf.mul(scale, prev[i]);
                    lambda[i + shift] ^= term;
                }
                shift += 1;
            }
        }
        lambda.truncate(l + 1);
        lambda
    }
}

/// Multiplies two GF(2) polynomials (bit-per-byte, lowest degree first).
fn poly_mul_gf2(a: &[u8], b: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; a.len() + b.len() - 1];
    for (i, &x) in a.iter().enumerate() {
        if x & 1 == 0 {
            continue;
        }
        for (j, &y) in b.iter().enumerate() {
            out[i + j] ^= y & 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn code_small() -> BchCode {
        // GF(2^10): n = 1023, t = 6 ⇒ 60 parity bits.
        BchCode::new(10, 6, 512).unwrap()
    }

    #[test]
    fn construction_parameters() {
        let code = code_small();
        assert_eq!(code.correction_capability(), 6);
        assert_eq!(code.info_bits(), 512);
        // t·m is an upper bound on parity; distinct cosets keep it exact
        // here: 6 cosets × 10 = 60.
        assert_eq!(code.parity_bits(), 60);
        assert_eq!(code.codeword_bits(), 572);
        assert!(code.rate() > 0.89);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert_eq!(BchCode::new(10, 0, 100), Err(BchError::ZeroCorrection));
        assert!(matches!(
            BchCode::new(10, 6, 1000),
            Err(BchError::InfoTooLong { .. })
        ));
        assert!(matches!(
            BchCode::new(7, 2, 10),
            Err(BchError::Field(FieldError::UnsupportedDegree(7)))
        ));
    }

    #[test]
    fn clean_roundtrip() {
        let code = code_small();
        let mut rng = StdRng::seed_from_u64(1);
        let info: Vec<u8> = (0..code.info_bits()).map(|_| rng.gen_range(0..2)).collect();
        let mut cw = code.encode(&info);
        assert_eq!(cw.len(), code.codeword_bits());
        assert_eq!(&cw[..code.info_bits()], &info[..], "systematic");
        assert_eq!(code.decode(&mut cw), BchDecode::Clean);
    }

    #[test]
    fn corrects_up_to_t_errors_anywhere() {
        let code = code_small();
        let mut rng = StdRng::seed_from_u64(2);
        for errors in 1..=code.correction_capability() as usize {
            for trial in 0..5 {
                let info: Vec<u8> = (0..code.info_bits()).map(|_| rng.gen_range(0..2)).collect();
                let clean = code.encode(&info);
                let mut word = clean.clone();
                // Flip `errors` distinct random positions.
                let mut flipped = std::collections::HashSet::new();
                while flipped.len() < errors {
                    flipped.insert(rng.gen_range(0..word.len()));
                }
                for &p in &flipped {
                    word[p] ^= 1;
                }
                match code.decode(&mut word) {
                    BchDecode::Corrected(pos) => {
                        assert_eq!(pos.len(), errors, "errors={errors} trial={trial}");
                        assert_eq!(word, clean);
                    }
                    other => panic!("errors={errors} trial={trial}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn beyond_t_is_detected_or_fails_cleanly() {
        let code = code_small();
        let mut rng = StdRng::seed_from_u64(3);
        let mut uncorrectable = 0;
        let trials = 20;
        for _ in 0..trials {
            let info: Vec<u8> = (0..code.info_bits()).map(|_| rng.gen_range(0..2)).collect();
            let mut word = code.encode(&info);
            // t + 2 errors: beyond design strength.
            let mut flipped = std::collections::HashSet::new();
            while flipped.len() < code.correction_capability() as usize + 2 {
                flipped.insert(rng.gen_range(0..word.len()));
            }
            for &p in &flipped {
                word[p] ^= 1;
            }
            if code.decode(&mut word) == BchDecode::Uncorrectable {
                uncorrectable += 1;
            }
        }
        // Most overload patterns must be flagged (miscorrection to another
        // codeword is possible but rare at this distance).
        assert!(
            uncorrectable >= trials * 8 / 10,
            "only {uncorrectable}/{trials} flagged"
        );
    }

    #[test]
    fn parity_only_errors_corrected() {
        let code = code_small();
        let info = vec![0u8; code.info_bits()];
        let mut word = code.encode(&info);
        let p = code.info_bits() + 3;
        word[p] ^= 1;
        assert!(matches!(code.decode(&mut word), BchDecode::Corrected(_)));
        assert!(word[code.info_bits()..].iter().enumerate().all(|(i, &b)| {
            // all-zero info ⇒ all-zero parity
            b == 0 || i == usize::MAX
        }));
    }

    #[test]
    fn all_zero_and_all_one_info() {
        let code = code_small();
        let mut zero = code.encode(&vec![0u8; code.info_bits()]);
        assert!(zero.iter().all(|&b| b == 0), "zero encodes to zero");
        assert_eq!(code.decode(&mut zero), BchDecode::Clean);
        let mut ones = code.encode(&vec![1u8; code.info_bits()]);
        assert_eq!(code.decode(&mut ones), BchDecode::Clean);
    }

    #[test]
    fn nand_scale_code() {
        // 2 KB chunk over GF(2^15), t = 40: a realistic 3Xnm controller
        // configuration. Construction and a correction round must work.
        let code = BchCode::nand_2kb(40).unwrap();
        assert_eq!(code.info_bits(), 16_384);
        assert_eq!(code.parity_bits(), 40 * 15);
        let mut rng = StdRng::seed_from_u64(4);
        let info: Vec<u8> = (0..code.info_bits()).map(|_| rng.gen_range(0..2)).collect();
        let clean = code.encode(&info);
        let mut word = clean.clone();
        for _ in 0..40 {
            let p = rng.gen_range(0..word.len());
            word[p] ^= 1;
        }
        // (Flips may collide, leaving ≤ 40 actual errors — all correctable.)
        match code.decode(&mut word) {
            BchDecode::Corrected(_) | BchDecode::Clean => assert_eq!(word, clean),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn poly_mul_gf2_basics() {
        // (1 + x)(1 + x) = 1 + x^2 over GF(2)
        assert_eq!(poly_mul_gf2(&[1, 1], &[1, 1]), vec![1, 0, 1]);
        // (1)(1 + x + x^3) identity
        assert_eq!(poly_mul_gf2(&[1], &[1, 1, 0, 1]), vec![1, 1, 0, 1]);
    }
}
