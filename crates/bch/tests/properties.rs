//! Property-based tests of the Galois field and the BCH codec.

use bch::{BchCode, BchDecode, GaloisField};
use proptest::prelude::*;

fn gf8() -> GaloisField {
    GaloisField::new(8).expect("GF(2^8) is supported")
}

proptest! {
    /// Multiplication is commutative, associative and distributes over
    /// addition for arbitrary GF(2^8) elements.
    #[test]
    fn field_axioms(a in 0u32..256, b in 0u32..256, c in 0u32..256) {
        let gf = gf8();
        prop_assert_eq!(gf.mul(a, b), gf.mul(b, a));
        prop_assert_eq!(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
        prop_assert_eq!(
            gf.mul(a, gf.add(b, c)),
            gf.add(gf.mul(a, b), gf.mul(a, c))
        );
    }

    /// Every nonzero element's inverse round-trips through mul and div.
    #[test]
    fn inverses(a in 1u32..256, b in 1u32..256) {
        let gf = gf8();
        prop_assert_eq!(gf.mul(a, gf.inv(a)), 1);
        prop_assert_eq!(gf.mul(gf.div(a, b), b), a);
    }

    /// Encoding is systematic and always yields a decodable codeword.
    #[test]
    fn encode_is_systematic_and_clean(seed in 0u64..10_000) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let code = BchCode::new(10, 4, 200).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let info: Vec<u8> = (0..code.info_bits()).map(|_| rng.gen_range(0..2)).collect();
        let mut cw = code.encode(&info);
        prop_assert_eq!(&cw[..code.info_bits()], &info[..]);
        prop_assert_eq!(code.decode(&mut cw), BchDecode::Clean);
    }

    /// Any error pattern of weight ≤ t is corrected exactly.
    #[test]
    fn corrects_any_pattern_within_t(
        seed in 0u64..1000,
        positions in prop::collection::hash_set(0usize..240, 1..=4),
    ) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let code = BchCode::new(10, 4, 200).unwrap();
        prop_assume!(positions.iter().all(|&p| p < code.codeword_bits()));
        let mut rng = StdRng::seed_from_u64(seed);
        let info: Vec<u8> = (0..code.info_bits()).map(|_| rng.gen_range(0..2)).collect();
        let clean = code.encode(&info);
        let mut word = clean.clone();
        for &p in &positions {
            word[p] ^= 1;
        }
        match code.decode(&mut word) {
            BchDecode::Corrected(found) => {
                prop_assert_eq!(found.len(), positions.len());
                prop_assert_eq!(word, clean);
            }
            other => return Err(TestCaseError::fail(format!("{other:?}"))),
        }
    }

    /// Linearity: the XOR of two codewords is a codeword.
    #[test]
    fn codewords_form_a_linear_code(seed in 0u64..1000) {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let code = BchCode::new(10, 3, 128).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<u8> = (0..code.info_bits()).map(|_| rng.gen_range(0..2)).collect();
        let b: Vec<u8> = (0..code.info_bits()).map(|_| rng.gen_range(0..2)).collect();
        let ca = code.encode(&a);
        let cb = code.encode(&b);
        let mut xored: Vec<u8> = ca.iter().zip(&cb).map(|(x, y)| x ^ y).collect();
        prop_assert_eq!(code.decode(&mut xored), BchDecode::Clean);
    }
}
