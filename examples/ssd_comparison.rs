//! System-level comparison of the four storage schemes on two contrasting
//! workloads — a miniature of the paper's Figure 6(a)/Figure 7 story.
//!
//! Run: `cargo run --release -p bench --example ssd_comparison`

use rand::{rngs::StdRng, SeedableRng};
use ssd::{LifetimeModel, Scheme, SsdConfig, SsdSimulator};
use workloads::WorkloadSpec;

fn main() {
    let specs = [
        WorkloadSpec::fin2(), // read-mostly OLTP
        WorkloadSpec::prj1(), // write-heavy project server
    ];
    for spec in specs {
        let spec = spec.with_requests(15_000).with_footprint(4_000);
        let trace = spec.generate(&mut StdRng::seed_from_u64(11));
        println!(
            "=== {} ({} requests, {:.0}% reads) ===",
            trace.name,
            trace.len(),
            trace.read_fraction() * 100.0
        );

        let mut baseline_response = None;
        let mut ldpc = None;
        println!(
            "{:<24} {:>12} {:>10} {:>9} {:>9} {:>9}",
            "scheme", "mean resp", "norm", "programs", "erases", "GC runs"
        );
        for scheme in Scheme::ALL {
            let mut sim = SsdSimulator::new(SsdConfig::scaled(scheme, 128));
            let stats = sim.run(&trace).expect("trace fits").clone();
            let mean = stats.mean_response().as_f64();
            let baseline = *baseline_response.get_or_insert(mean);
            if scheme == Scheme::LdpcInSsd {
                ldpc = Some(stats.clone());
            }
            println!(
                "{:<24} {:>12} {:>9.2}x {:>9} {:>9} {:>9}",
                scheme.label(),
                stats.mean_response().to_string(),
                mean / baseline,
                stats.flash_programs,
                stats.erases,
                stats.gc_runs
            );
            // Endurance impact of the full system vs LDPC-in-SSD.
            if scheme == Scheme::FlexLevel {
                if let Some(ref reference) = ldpc {
                    let erase_increase = if reference.erases > 0 {
                        stats.erases as f64 / reference.erases as f64
                    } else {
                        1.0
                    };
                    let lifetime = LifetimeModel::paper();
                    println!(
                        "    -> erase increase {:.2}x; projected lifetime {:.1}% of LDPC-in-SSD",
                        erase_increase,
                        lifetime.relative_lifetime(erase_increase.max(1.0)) * 100.0
                    );
                }
            }
        }
        println!();
    }
}
