//! Device-reliability walkthrough: how LevelAdjust and NUNMA reshape the
//! error behaviour of MLC NAND cells.
//!
//! Reproduces, at example scale, the observations behind §4 of the paper:
//! retention errors concentrate on the highest `Vth` level, so allocating
//! it the biggest noise margin (NUNMA) buys the largest BER reduction.
//!
//! Run: `cargo run --release -p bench --example device_reliability`

use flash_model::{Hours, LevelConfig, VthLevel};
use flexlevel::{NunmaConfig, ReduceCode};
use rand::{rngs::StdRng, SeedableRng};
use reliability::{BerSimulation, ProgramModel, RetentionModel, RetentionStress, StressConfig};

fn main() {
    let retention = RetentionModel::paper();
    let program = ProgramModel::default();

    // --- Where do retention errors land? (the motivation for NUNMA) ----
    println!("per-level share of retention errors, reduced-state cells");
    println!("(paper §4.2 reports ≈78% at level 2, ≈15% at level 1):\n");
    let basic = LevelConfig::reduced_symmetric();
    let codec = ReduceCode;
    let sim = BerSimulation::new(
        &basic,
        &codec,
        program,
        StressConfig::retention_only(retention, RetentionStress::new(6000, Hours::weeks(1.0))),
    );
    let mut rng = StdRng::seed_from_u64(1);
    let report = sim.run(400_000, &mut rng);
    for level in 0..3u8 {
        println!(
            "  level {level}: {:5.1}% of cell errors",
            report.error_share(VthLevel::new(level)) * 100.0
        );
    }

    // --- Retention BER of each NUNMA row vs the baseline ---------------
    println!("\nretention BER at representative stress points:\n");
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "scheme", "3000/1w", "5000/1w", "6000/1mo"
    );
    let points = [
        (3000u32, Hours::weeks(1.0)),
        (5000, Hours::weeks(1.0)),
        (6000, Hours::months(1.0)),
    ];
    let row = |label: &str, config: &LevelConfig, codec_bits: f64| {
        let mut cells = Vec::new();
        for &(pe, t) in &points {
            let stress = StressConfig::retention_only(retention, RetentionStress::new(pe, t));
            let probe = reliability::LevelProbeCodec::new(config.level_count() as u8);
            let sim = BerSimulation::new(config, &probe, program, stress);
            let mut rng = StdRng::seed_from_u64(2);
            let report = sim.run(300_000, &mut rng);
            cells.push(report.cell_error_rate() / codec_bits);
        }
        println!(
            "{:<22} {:>12.3e} {:>12.3e} {:>12.3e}",
            label, cells[0], cells[1], cells[2]
        );
    };
    row("baseline MLC", &LevelConfig::normal_mlc(), 2.0);
    for (label, cfg) in NunmaConfig::paper_rows() {
        row(label, &cfg.level_config(), 1.5);
    }

    // --- The ReduceCode guarantee ---------------------------------------
    println!("\nReduceCode one-level-distortion audit (Table 1 mapping):");
    let mut histogram = [0u32; 3];
    for value in 0..8u16 {
        let (a, b) = ReduceCode::encode_value(value);
        for (da, db) in neighbours(a, b) {
            let read = ReduceCode::decode_levels(da, db);
            histogram[((value ^ read).count_ones() as usize).min(2)] += 1;
        }
    }
    println!(
        "  0-bit: {}, 1-bit: {}, 2-bit: {} (of 21 possible single-level slips)",
        histogram[0], histogram[1], histogram[2]
    );
}

fn neighbours(a: VthLevel, b: VthLevel) -> Vec<(VthLevel, VthLevel)> {
    let mut out = Vec::new();
    for delta in [-1i8, 1] {
        let na = a.index() as i8 + delta;
        if (0..=2).contains(&na) {
            out.push((VthLevel::new(na as u8), b));
        }
        let nb = b.index() as i8 + delta;
        if (0..=2).contains(&nb) {
            out.push((a, VthLevel::new(nb as u8)));
        }
    }
    out
}
