//! Quickstart: the FlexLevel pipeline end to end in under a minute.
//!
//! 1. Estimate the raw BER of a worn baseline MLC cell and of a
//!    NUNMA-3 reduced-state cell.
//! 2. Ask the sensing schedule what each costs to read under LDPC.
//! 3. Replay an OLTP-like trace through the full FlexLevel SSD and
//!    compare its response time against LDPC-in-SSD.
//!
//! Run: `cargo run --release -p bench --example quickstart`

use flash_model::{Hours, LevelConfig};
use flexlevel::NunmaScheme;
use ldpc::{ReadLatencyModel, SensingSchedule};
use rand::{rngs::StdRng, SeedableRng};
use reliability::{analytic, InterferenceModel, ProgramModel, RetentionModel};
use ssd::{Scheme, SsdConfig, SsdSimulator};
use workloads::WorkloadSpec;

fn main() {
    // --- 1. Device-level BER at 6000 P/E after a month of retention ----
    let program = ProgramModel::default();
    let c2c = InterferenceModel::default();
    let retention = RetentionModel::paper();
    let stress = Some((&retention, 6000u32, Hours::months(1.0)));

    let baseline = analytic::estimate(
        &LevelConfig::normal_mlc(),
        &program,
        Some(&c2c),
        stress,
        2.0,
    );
    let reduced = analytic::estimate(
        &NunmaScheme::Nunma3.config().level_config(),
        &program,
        Some(&c2c),
        stress,
        1.5,
    );
    println!("raw BER at 6000 P/E, 1 month retention:");
    println!("  baseline MLC cell : {:.3e}", baseline.ber);
    println!("  NUNMA-3 reduced   : {:.3e}", reduced.ber);

    // --- 2. What does LDPC sensing cost at those BERs? ------------------
    let schedule = SensingSchedule::paper_anchor();
    let latency = ReadLatencyModel::paper_mlc();
    let base_levels = schedule.required_levels(baseline.ber);
    let reduced_levels = schedule.required_levels(reduced.ber);
    println!("\nextra soft sensing levels required:");
    println!(
        "  baseline: {} levels -> read ≈ {}",
        base_levels,
        latency.read_latency_at_ber(base_levels, baseline.ber)
    );
    println!(
        "  reduced : {} levels -> read ≈ {}",
        reduced_levels,
        latency.reduced_read_latency()
    );

    // --- 3. System-level: FlexLevel vs LDPC-in-SSD on an OLTP trace -----
    let trace = WorkloadSpec::fin2()
        .with_requests(20_000)
        .with_footprint(4_000)
        .generate(&mut StdRng::seed_from_u64(7));

    println!("\nreplaying {} requests of {}:", trace.len(), trace.name);
    let mut results = Vec::new();
    for scheme in [Scheme::LdpcInSsd, Scheme::FlexLevel] {
        let mut sim = SsdSimulator::new(SsdConfig::scaled(scheme, 128));
        let stats = sim.run(&trace).expect("trace fits the scaled device");
        println!(
            "  {:<22} mean response {} ({} promotions, {} reduced reads)",
            scheme.label(),
            stats.mean_response(),
            stats.promotions,
            stats.reduced_reads
        );
        results.push(stats.mean_response().as_f64());
    }
    println!(
        "\nFlexLevel speedup over LDPC-in-SSD: {:.1}%",
        (1.0 - results[1] / results[0]) * 100.0
    );
}
