//! LDPC soft-sensing ladder: watch the real min-sum decoder fail at
//! hard-decision sensing and recover as soft levels are added — the
//! mechanism behind Table 5 and the entire FlexLevel premise.
//!
//! The last column prices each rung with the *measured* mean iteration
//! count (not the worst-case assumption), via
//! `ReadLatencyModel::read_latency`.
//!
//! Run: `cargo run --release -p bench --example ldpc_sensing`

use flash_model::{Hours, LevelConfig};
use ldpc::{
    decode_success_rate, ChannelStress, DecoderGraph, MinSumDecoder, MlcReadChannel, PageKind,
    QcLdpcCode, ReadLatencyModel, SoftSensingConfig,
};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let code = QcLdpcCode::paper_code();
    println!(
        "code: rate-{:.3} QC-LDPC, n = {}, k = {} (one 4 KB data block)",
        code.rate(),
        code.codeword_bits(),
        code.info_bits()
    );
    let graph = DecoderGraph::cached(&code);
    let decoder = MinSumDecoder::new();
    let config = LevelConfig::normal_mlc();
    let latency = ReadLatencyModel::paper_mlc();
    let mut rng = StdRng::seed_from_u64(3);

    for (pe, time, label) in [
        (4000u32, Hours::weeks(1.0), "4000 P/E, 1 week"),
        (6000, Hours::weeks(1.0), "6000 P/E, 1 week"),
        (6000, Hours::months(1.0), "6000 P/E, 1 month"),
    ] {
        println!("\nstress: {label}");
        println!(
            "{:>12} {:>12} {:>10} {:>12} {:>12}",
            "extra lvls", "raw BER", "success", "mean iters", "read cost"
        );
        for extra in 0..=6u32 {
            let channel = MlcReadChannel::build_cached(
                &config,
                PageKind::Lower,
                ChannelStress::retention(pe, time),
                SoftSensingConfig::soft(extra),
                60_000,
                100 + extra as u64,
            );
            let (success, iters) =
                decode_success_rate(&code, &graph, &decoder, &channel, 10, &mut rng);
            let measured = latency.read_latency(extra, (iters.round() as u32).clamp(1, 30));
            println!(
                "{:>12} {:>12.3e} {:>9.0}% {:>12.1} {:>12}",
                extra,
                channel.raw_ber(),
                success * 100.0,
                iters,
                measured
            );
            if success == 1.0 && extra > 0 {
                println!("{:>12}", "(decodes; higher levels only add margin)");
                break;
            }
        }
    }
}
