//! Device-level walkthrough: programming pages through the even/odd
//! bitline structure in both cell modes, plus hard-decision BCH
//! protection of a page — the pre-LDPC world the paper's introduction
//! starts from.
//!
//! Run: `cargo run --release -p bench --example page_programming`

use bch::{BchCode, BchDecode};
use flash_model::{Bit, CellMode, MlcBlock, NormalPage, ReducedPage, WordlineLayout};
use flexlevel::ReducedWordline;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn random_page<R: Rng>(bits: usize, rng: &mut R) -> Vec<Bit> {
    (0..bits).map(|_| Bit::from(rng.gen_bool(0.5))).collect()
}

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // --- Normal mode: 4 pages per wordline ------------------------------
    let mut block = MlcBlock::new(1, 64);
    println!(
        "normal-mode wordline: {} bitlines -> {} pages of {} bits",
        block.bitlines(),
        NormalPage::ALL.len(),
        block.page_bits()
    );
    let pages: Vec<(NormalPage, Vec<Bit>)> = NormalPage::ALL
        .iter()
        .map(|&p| (p, random_page(block.page_bits(), &mut rng)))
        .collect();
    for (page, bits) in &pages {
        block
            .program_page(0, *page, bits)
            .expect("program order follows the two-step sequence");
    }
    let ok = pages
        .iter()
        .all(|(p, bits)| &block.read_page(0, *p).unwrap() == bits);
    println!("  all four pages read back correctly: {ok}");

    // --- Reduced mode: 3 pages per wordline (LevelAdjust) --------------
    let layout = WordlineLayout::new(64).unwrap();
    let mut wl = ReducedWordline::new(layout.pairs_per_group() as usize);
    println!(
        "\nreduced-mode wordline: same 64 bitlines -> 3 pages of {} bits ({}% density)",
        wl.page_bits(),
        (layout.relative_density(CellMode::Reduced) * 100.0) as u32
    );
    let lower = random_page(wl.page_bits(), &mut rng);
    let middle = random_page(wl.page_bits(), &mut rng);
    let upper = random_page(wl.page_bits(), &mut rng);
    wl.program_page(ReducedPage::Lower, &lower).unwrap();
    wl.program_page(ReducedPage::Middle, &middle).unwrap();
    wl.program_page(ReducedPage::Upper, &upper).unwrap();
    println!(
        "  lower/middle/upper pages read back correctly: {}",
        wl.read_page(ReducedPage::Lower) == lower
            && wl.read_page(ReducedPage::Middle) == middle
            && wl.read_page(ReducedPage::Upper) == upper
    );

    // --- Hard-decision protection of a stored page ----------------------
    println!("\nprotecting a 512-bit sector with BCH (t = 6 over GF(2^10)):");
    let code = BchCode::new(10, 6, 512).expect("valid BCH parameters");
    let sector: Vec<u8> = (0..512).map(|_| rng.gen_range(0..2)).collect();
    let mut stored = code.encode(&sector);
    println!(
        "  {} info bits + {} parity bits (rate {:.3})",
        code.info_bits(),
        code.parity_bits(),
        code.rate()
    );
    // Retention damage: flip five random stored bits.
    for _ in 0..5 {
        let p = rng.gen_range(0..stored.len());
        stored[p] ^= 1;
    }
    match code.decode(&mut stored) {
        BchDecode::Corrected(positions) => {
            println!(
                "  BCH corrected {} bit errors -> sector intact: {}",
                positions.len(),
                stored[..512] == sector[..]
            );
        }
        other => println!("  unexpected decode outcome: {other:?}"),
    }
    println!("\n(at 2Xnm error rates this sector would exceed any practical t —");
    println!(" run exp_motivation to see the divergence, and the ldpc examples");
    println!(" for the soft-decision fix FlexLevel then accelerates)");
}
